"""Command-line interface: ``aarohi <subcommand>``.

Thin wrappers over the library so each piece of the paper's workflow
(Fig. 6) is drivable from a shell:

* ``generate`` — synthesize a cluster log window to a file
* ``rules`` — print Algorithm 1's rule derivation (Table IV style)
* ``predict`` — run the predictor fleet over a log file
* ``pipeline`` — full two-phase run (generate → mine → predict → metrics)
* ``speedup`` — quick Table VI-style comparison on this machine
* ``obs-report`` — render a ``--metrics`` snapshot (and optionally a
  ``--trace`` file) as funnel / latency / lifecycle summaries, the
  delta of two snapshots (``--diff BEFORE AFTER``), or just the stage
  span tables (``--spans``)
* ``obs-serve`` — replay a log through a live-instrumented fleet while
  serving ``/metrics``, ``/healthz``, ``/quality``, ``/alerts``, and
  the ``/debug/*`` plane over HTTP
* ``obs-rules`` — lint an alert-rules file (``--check``, exit 2 on
  problems) or print the shipped default ruleset as TOML
* ``serve`` — persistent sharded live-ingest daemon: accept line
  streams over TCP / unix sockets, tail rotating files, survive worker
  death via chain-state handoff, and serve the obs HTTP plane
* ``stream`` — replay a log file *as a live stream* (optionally paced
  against event time) to a ``serve`` daemon or stdout

Long-running commands (``predict``, ``obs-serve``, ``serve``) install
a SIGTERM handler: on termination they drain gracefully — flush a
``shutdown`` flight capsule and write the final ``--metrics`` snapshot
— and exit 143, so an orchestrator's ``kill`` never loses the run's
accounting.
"""

from __future__ import annotations

import argparse
import json as _json
import math
import signal
import sys
import time
from statistics import mean
from typing import List, Optional, Sequence

from .core import PredictorFleet, build_rules, pair_predictions
from .logsim import (
    ERROR_POLICIES,
    IngestStats,
    read_log,
    read_truth,
    sorted_stream,
    system_by_name,
    write_log,
    write_truth,
)

try:  # the simulator half of logsim needs numpy (the [fast] extra)
    from .logsim import ClusterLogGenerator, CorruptionSpec, corrupt_window
except ImportError:
    CorruptionSpec = corrupt_window = None

    def ClusterLogGenerator(*_args, **_kwargs):
        raise SystemExit(
            "this command drives the log simulator, which requires numpy:"
            " install the [fast] extra (pip install 'repro[fast]')")
from .obs import (
    FlightRecorder,
    LiveMonitor,
    Observability,
    ObsServer,
    QualityScoreboard,
    SpanClock,
    Tracer,
    inter_arrival_budget,
)
from .reporting import render_table


SIGTERM_EXIT = 143  # 128 + SIGTERM, the conventional termination code


class _Terminated(Exception):
    """Raised by the SIGTERM handler to unwind into the graceful-drain
    path of whatever command is running."""

    def __init__(self, signame: str = "SIGTERM"):
        super().__init__(signame)
        self.signame = signame


def _install_sigterm() -> None:
    """Route SIGTERM through :class:`_Terminated` so ``finally`` blocks
    and context managers run (a bare default handler would kill the
    process mid-write).  A no-op off the main thread, where Python
    forbids signal handlers (tests drive commands in-process)."""

    def handler(signum, frame):
        raise _Terminated(signal.Signals(signum).name)

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:
        pass


def _flush_shutdown(obs, signame: str) -> None:
    """Freeze the flight ring into a shutdown capsule (when armed) and
    say where it landed."""
    if obs is None:
        return
    text = obs.flush_shutdown(signal=signame)
    if text is not None and obs.flight is not None \
            and obs.flight.last_capsule_path is not None:
        print(f"flight capsule (shutdown): {obs.flight.last_capsule_path}",
              file=sys.stderr)


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default="HPC3",
        choices=["HPC1", "HPC2", "HPC3", "HPC4"],
        help="which Table II system to simulate",
    )
    parser.add_argument("--seed", type=int, default=7)


def _add_ingest_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--on-error", default="warn", choices=list(ERROR_POLICIES),
        help="malformed-line policy: strict raises, warn logs and "
             "quarantines, quarantine counts silently (default: warn)",
    )
    parser.add_argument(
        "--reorder-horizon", type=float, default=0.0, metavar="SECONDS",
        help="buffer the stream and re-sort events arriving up to this "
             "many seconds out of order (default: 0, off)",
    )


def _read_events(args: argparse.Namespace, stats: IngestStats) -> list:
    """Read ``args.log`` under the ingest flags, funnel into ``stats``."""
    events = read_log(args.log, on_error=args.on_error, stats=stats)
    if args.reorder_horizon > 0:
        events = sorted_stream(events, args.reorder_horizon, stats)
    return list(events)


def _ingest_summary(stats: IngestStats) -> Optional[str]:
    if not stats.lines_read:
        return None
    parts = [f"ingest: {stats.decoded}/{stats.lines_read} lines decoded"]
    if stats.quarantined:
        reasons = ", ".join(
            f"{n} {reason}" for reason, n
            in sorted(stats.quarantined_by_reason.items()))
        parts.append(f"{stats.quarantined} quarantined ({reasons})")
    if stats.reordered:
        parts.append(f"{stats.reordered} reordered")
    if stats.late:
        parts.append(f"{stats.late} late (past the horizon)")
    if stats.out_of_order:
        parts.append(f"{stats.out_of_order} out of order")
    return "; ".join(parts)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="OUT.prom", default=None,
        help="write a Prometheus text-format metrics snapshot here",
    )
    parser.add_argument(
        "--trace", metavar="TRACE.jsonl", default=None,
        help="write prediction-lifecycle trace records (JSONL) here",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of chain activations to trace (default: all)",
    )
    parser.add_argument(
        "--spans", type=float, default=0.0, metavar="SAMPLE",
        help="time pipeline stages (ingest/decode/scan/match/emit) on "
             "this fraction of runs (default: 0, off; 1.0 = every run)",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="arm the flight recorder: on a deadline burn, quarantine "
             "breach, discard-drift trip, or firing alert rule, dump a "
             "JSONL crash capsule into DIR",
    )
    parser.add_argument(
        "--history", type=float, default=None, metavar="SECONDS",
        help="arm the in-process history ring, capturing a registry "
             "sample at most every SECONDS (0 = every run); --watch "
             "arms it automatically",
    )
    parser.add_argument(
        "--rules", default=None, metavar="RULES",
        help="evaluate alert rules on the history cadence: a [[rule]] "
             "TOML file, or the literal word 'default' for the shipped "
             "ruleset (implies --history)",
    )


def _make_obs(
    args: argparse.Namespace, config=None
) -> Optional[Observability]:
    """Build the Observability the flags ask for (None = fully off).

    ``--watch`` turns on the live monitor (deadline budget derived from
    the system config); ``--truth`` turns on the quality scoreboard,
    pre-loaded with the ground-truth failures.
    """
    watch = getattr(args, "watch", False)
    truth = getattr(args, "truth", None)
    spans_sample = getattr(args, "spans", 0.0)
    flight_dir = getattr(args, "flight_dir", None)
    history_interval = getattr(args, "history", None)
    rules_source = getattr(args, "rules", None)
    if not (args.metrics or args.trace or watch or truth
            or spans_sample or flight_dir
            or history_interval is not None or rules_source):
        return None
    tracer = None
    if args.trace:
        tracer = Tracer(args.trace, sample=args.trace_sample)
    live = None
    if watch:
        budget = inter_arrival_budget(config) if config is not None else None
        live = LiveMonitor(budget)
    quality = None
    if truth:
        quality = QualityScoreboard()
        quality.add_failures(read_truth(truth))
    spans = SpanClock(spans_sample) if spans_sample > 0.0 else None
    flight = FlightRecorder(directory=flight_dir) if flight_dir else None
    history, rules = _make_history(
        history_interval, rules_source, default_on=watch)
    return Observability(tracer=tracer, live=live, quality=quality,
                         spans=spans, flight=flight,
                         history=history, rules=rules)


def _make_history(
    history_interval: Optional[float],
    rules_source: Optional[str],
    *,
    default_on: bool = False,
):
    """Build the (history ring, rule engine) pair the flags ask for.

    ``--watch`` (``default_on``) arms both by default — the dashboard's
    trend columns and firing-alerts banner need them — while an
    explicit ``--history``/``--rules`` wins over the default.
    """
    from .obs import HistoryRing, RuleEngine, default_ruleset, load_rules

    if history_interval is None and rules_source is None and default_on:
        return HistoryRing(), RuleEngine(default_ruleset())
    history = None
    if history_interval is not None:
        if history_interval < 0:
            raise SystemExit("--history must be >= 0 seconds")
        history = HistoryRing(interval=history_interval)
    rules = None
    if rules_source:
        try:
            loaded = (default_ruleset() if rules_source == "default"
                      else load_rules(rules_source))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load rules {rules_source!r}: {exc}")
        rules = RuleEngine(loaded)
        if history is None:
            history = HistoryRing()
    return history, rules


def _finish_obs(args: argparse.Namespace, obs: Optional[Observability]) -> None:
    if obs is None:
        return
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus())
    if obs.rules is not None:
        firing = obs.rules.firing()
        if firing:
            rules = ", ".join(
                f"{r.id} ({r.severity})" for r in firing)
            print(f"alerts firing: {rules}", file=sys.stderr)
    if obs.flight is not None and obs.flight.last_capsule_path is not None:
        print(f"flight capsule ({obs.flight.last_reason}): "
              f"{obs.flight.last_capsule_path}", file=sys.stderr)
    obs.close()


def cmd_generate(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    window = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures,
    )
    if args.corrupt > 0:
        spec = CorruptionSpec.all_kinds(args.corrupt)
        lines, report = corrupt_window(
            window.events, spec, seed=args.seed)
        with open(args.out, "w", encoding="utf-8", newline="") as fh:
            fh.writelines(line + "\n" for line in lines)
        count = len(lines)
        faults = ", ".join(
            f"{v} {k}" for k, v in report.as_dict().items()
            if v and not k.startswith("events_"))
        print(f"corrupted at p={args.corrupt:g}: {faults}")
    else:
        count = write_log(window.events, args.out)
    print(f"wrote {count} events for {len(window.nodes)} nodes to {args.out}")
    print(f"injected {len(window.failures)} failures "
          f"({sum(1 for i in window.injections if i.kind == 'novel')} novel)")
    if args.truth:
        n_truth = write_truth(window.failures, args.truth)
        print(f"wrote {n_truth} ground-truth failures to {args.truth}")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    rule_set = build_rules(gen.chains, factor=not args.flat)
    print(rule_set.describe())
    return 0


def _watch_frame(obs: Observability) -> str:
    """One dashboard refresh: firing-alerts banner, funnel, latency,
    fleet, live, quality, alert-rule states, history trends."""
    from .obs import group_history_records
    from .obs.report import (
        alerts_banner,
        alerts_section,
        history_trend_section,
        report_sections,
    )

    obs.refresh()
    sections = report_sections(obs.registry.snapshot())
    alerts = obs.alerts_report()
    banner = alerts_banner(alerts)
    if banner is not None:
        sections.insert(0, banner)
    table = alerts_section(alerts)
    if table is not None:
        sections.append(table)
    records = obs.history_records()
    if records:
        trends = history_trend_section(
            group_history_records(records), limit=16,
            title="History trends (ring)")
        if trends is not None:
            sections.append(trends)
    return "\n\n".join(sections)


def _run_watched(
    fleet: PredictorFleet, events: Sequence, obs: Observability, slices: int
):
    """Drive the stream in slices, redrawing the dashboard per slice."""
    from .core.fleet import FleetReport

    total = FleetReport()
    n_slices = max(1, slices)
    size = max(1, math.ceil(len(events) / n_slices)) if events else 1
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    for start in range(0, len(events), size):
        report = fleet.run(events[start:start + size])
        total.predictions.extend(report.predictions)
        total.stats.add(report.stats)
        total.nodes = report.nodes
        done = min(start + size, len(events))
        print(f"{clear}— watch: {done}/{len(events)} events —\n")
        print(_watch_frame(obs))
    return total


def cmd_predict(args: argparse.Namespace) -> int:
    _install_sigterm()
    config = system_by_name(args.system)
    obs = _make_obs(args, config)
    gen = ClusterLogGenerator(config, seed=args.seed)
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        backend=args.backend, obs=obs,
        scan_backend=getattr(args, "scan_backend", "str"),
    )
    try:
        if getattr(args, "watch", False):
            ingest = IngestStats()
            events = _read_events(args, ingest)
            report = _run_watched(fleet, events, obs, args.slices)
            if obs is not None and ingest.lines_read:
                obs.record_ingest(ingest)
        elif getattr(fleet.scanner, "backend", "str") != "str":
            # Byte pipeline: mmap → byte kernels, rejected lines never
            # decoded; run_lines folds ingest into obs itself.
            report = fleet.run_lines(
                args.log, on_error=args.on_error,
                reorder_horizon=args.reorder_horizon, timing="off",
            )
            ingest = report.ingest
        else:
            ingest = IngestStats()
            events = _read_events(args, ingest)
            report = fleet.run(events)
            if obs is not None and ingest.lines_read:
                obs.record_ingest(ingest)
    except _Terminated as term:
        # Graceful drain: everything processed so far is accounted —
        # shutdown capsule + final metrics snapshot, then the
        # conventional 143.
        print(f"predict: {term.signame} — draining", file=sys.stderr)
        _flush_shutdown(obs, term.signame)
        _finish_obs(args, obs)
        return SIGTERM_EXIT
    _finish_obs(args, obs)
    if args.json:
        scanner = fleet.scanner
        funnel = {}
        if scanner is not None and hasattr(scanner, "funnel"):
            funnel = scanner.funnel(report.lines_seen)
        print(_json.dumps({
            "system": args.system,
            "predictions": [
                {
                    "node": p.node,
                    "chain": p.chain_id,
                    "flagged_at": p.flagged_at,
                    "prediction_time": p.prediction_time,
                }
                for p in report.predictions
            ],
            "stats": {
                "lines_seen": report.lines_seen,
                "lines_tokenized": report.lines_tokenized,
                "fc_related_fraction": report.fc_related_fraction,
                "nodes": report.nodes,
            },
            "scanner": {
                "backend": getattr(scanner, "backend", None) or "str",
                "requested_backend": getattr(
                    scanner, "requested_backend", None)
                or getattr(scanner, "backend", None) or "str",
                "fallback": getattr(scanner, "requested_backend", None)
                not in (None, getattr(scanner, "backend", None)),
                "translate_evictions": funnel.get("translate_evictions", 0),
            },
            "ingest": ingest.as_dict(),
        }, indent=2))
        return 0
    rows = [
        (p.node, p.chain_id, f"{p.flagged_at:.3f}",
         f"{p.prediction_time * 1e3:.4f}")
        for p in report.predictions
    ]
    print(render_table(
        ["node", "chain", "flagged_at (s)", "prediction time (ms)"], rows,
        title=f"{len(rows)} predictions "
              f"({report.fc_related_fraction:.1%} of phrases FC-related)",
    ))
    summary = _ingest_summary(ingest)
    if summary is not None:
        print(summary)
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from .training import (
        EventLabeler, anomaly_sequences, confusion_from_predictions,
        mine_chains, terminal_tokens,
    )

    config = system_by_name(args.system)
    gen = ClusterLogGenerator(config, seed=args.seed)
    train = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)
    test = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)

    labeler = EventLabeler(gen.store)
    sequences = anomaly_sequences(labeler.label_stream(train.events))
    terminals = terminal_tokens(gen.store, ["node down", "node *", "shutting down"])
    mined = mine_chains(sequences, terminals, min_support=1)
    if not args.json:
        print(f"Phase 1: mined {len(mined.chains)} chains "
              f"from {len(mined.candidates)} candidates")

    fleet = PredictorFleet.from_store(
        mined.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(test.events)
    pairing = pair_predictions(report.predictions, test.failures)
    confusion = confusion_from_predictions(
        report.predictions, test.failures, test.nodes)
    pct = confusion.as_percentages()
    if args.json:
        print(_json.dumps({
            "system": config.name,
            "mined_chains": len(mined.chains),
            "candidates": len(mined.candidates),
            "predictions": len(report.predictions),
            "failures": len(test.failures),
            "recall_pct": pct["recall"],
            "precision_pct": pct["precision"],
            "accuracy_pct": pct["accuracy"],
            "fnr_pct": pct["fnr"],
            "mean_lead_time_s": pairing.mean_lead_time(),
            "mean_prediction_time_s": pairing.mean_prediction_time(),
        }, indent=2))
        return 0
    print(render_table(
        ["metric", "value"],
        [
            ("recall %", f"{pct['recall']:.1f}"),
            ("precision %", f"{pct['precision']:.1f}"),
            ("accuracy %", f"{pct['accuracy']:.1f}"),
            ("FNR %", f"{pct['fnr']:.1f}"),
            ("mean lead time (min)", f"{pairing.mean_lead_time() / 60:.2f}"),
            ("mean prediction time (ms)",
             f"{pairing.mean_prediction_time() * 1e3:.4f}"),
        ],
        title=f"{config.name} two-phase pipeline",
    ))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    from .baselines import (
        AarohiMessageDetector, CloudSeerMessageDetector, DeepLogDetector,
        DeshDetector, KeyedLSTMMessageDetector, repeat_message_checks,
    )
    from .templates.store import NaiveTemplateScanner

    import numpy as np

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    chains = gen.chains
    rng = np.random.default_rng(args.seed)
    chain_def = max(gen.trained_defs, key=lambda d: len(d.phrase_keys))
    entries = []
    for i in range(args.length):
        key = chain_def.phrase_keys[i % len(chain_def.phrase_keys)]
        entries.append((gen.catalog.anomaly(key).make(rng, "c0-0c0s0n0"), float(i)))
    scanner = NaiveTemplateScanner(gen.store, keep=chains.token_set)
    detectors = [
        AarohiMessageDetector(chains, gen.store, timeout=1e9),
        KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(chains, epochs=5, seed=1)),
        KeyedLSTMMessageDetector(
            "DeepLog", scanner,
            DeepLogDetector.train([c.tokens for c in chains], epochs=5, seed=1)),
        CloudSeerMessageDetector(chains, gen.store),
    ]
    rows = []
    for det in detectors:
        runs = repeat_message_checks(det, entries, repeats=5)
        rows.append((det.name, f"{mean(r.msecs for r in runs):.4f}"))
    print(render_table(
        ["approach", f"time for {args.length}-length check (ms)"], rows,
        title="Prediction-time comparison (Table VI shape)",
    ))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .codegen import emit_predictor_source

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    source = emit_predictor_source(
        gen.chains, gen.store, timeout=gen.recommended_timeout)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(source)
    print(f"wrote standalone predictor ({len(source.splitlines())} lines, "
          f"{len(gen.chains)} chains) to {args.out}")
    return 0


def cmd_fieldstudy(args: argparse.Namespace) -> int:
    from .analysis import (
        fit_weibull, inter_failure_stats, inter_failure_times, run_campaign,
    )

    campaign = run_campaign(
        system_by_name(args.system), windows=args.windows,
        duration=args.duration, n_nodes=args.nodes,
        failures_per_window=args.failures, seed=args.seed)
    stats = inter_failure_stats(campaign.failures)
    weibull = fit_weibull(inter_failure_times(campaign.failures))
    print(render_table(
        ["statistic", "value"],
        [
            ("windows", campaign.windows),
            ("failures", stats.count),
            ("MTBF (min)", f"{stats.mtbf / 60:.1f}"),
            ("Weibull shape", f"{weibull.shape:.2f}"),
            ("campaign recall", f"{campaign.recall:.1%}"),
        ],
        title=f"{campaign.system} longitudinal field study"))
    return 0


class _ReportError(Exception):
    """A user-facing obs-report input problem (exit code 2)."""


def _load_snapshot(path: str) -> dict:
    """Parse a ``.prom`` file, or raise :class:`_ReportError` with a
    one-line explanation (missing, empty, truncated, not Prometheus)."""
    from .obs import PrometheusParseError, parse_prometheus

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise _ReportError(
            f"cannot read {path}: {exc.strerror or exc}") from exc
    if not text.strip():
        raise _ReportError(f"{path} is empty — no metrics were written")
    try:
        snapshot = parse_prometheus(text)
    except PrometheusParseError as exc:
        raise _ReportError(
            f"{path} is not a valid metrics snapshot ({exc})") from exc
    if not snapshot:
        raise _ReportError(f"{path} contains no metric series")
    return snapshot


def _load_trace(path: str) -> list:
    from .obs import read_trace

    try:
        return read_trace(path)
    except OSError as exc:
        raise _ReportError(
            f"cannot read {path}: {exc.strerror or exc}") from exc
    except ValueError as exc:
        raise _ReportError(
            f"{path} is not a valid trace file ({exc})") from exc


def _load_history_records(path: str) -> list:
    """History points from an NDJSON dump (``/debug/history``) or a
    flight capsule with an embedded ``history`` record."""
    from .obs import parse_history_ndjson, read_capsule

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise _ReportError(
            f"cannot read {path}: {exc.strerror or exc}") from exc
    if not text.strip():
        raise _ReportError(f"{path} is empty — no history was written")
    first = text.lstrip().splitlines()[0]
    if '"kind":"capsule"' in first.replace(" ", ""):
        capsule = read_capsule(text)
        records = capsule.get("history")
        if not records:
            raise _ReportError(
                f"{path} is a flight capsule without embedded history "
                "(only alert_rule capsules carry one)")
        return records
    try:
        return parse_history_ndjson(text)
    except ValueError as exc:
        raise _ReportError(
            f"{path} is not a history dump ({exc})") from exc


def cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import diff_snapshots, group_history_records, snapshot_asymmetry
    from .obs.report import (
        history_trend_section,
        report_sections,
        resets_section,
        series_change_section,
        span_latency_section,
        spans_section,
    )

    change_section = None
    clamp_section = None
    try:
        if getattr(args, "history", None):
            records = _load_history_records(args.history)
            trends = history_trend_section(
                group_history_records(records),
                title=f"History trends — {len(records)} points")
            if trends is None:
                raise _ReportError(
                    f"{args.history} contains no history points")
            print(trends)
            return 0
        if args.diff:
            before = _load_snapshot(args.diff[0])
            after = _load_snapshot(args.diff[1])
            snapshot = diff_snapshots(after, before)
            # Snapshots that gained or lost whole series (a run that
            # turned spans on, a backend change) report the asymmetry
            # instead of pretending the series never existed.
            change_section = series_change_section(
                snapshot_asymmetry(after, before))
            # Counters that went backwards (process restart between
            # snapshots) had their deltas clamped to 0 — say so rather
            # than silently reporting a flat rate.
            clamp_section = resets_section(snapshot)
            if not snapshot and change_section is None:
                print("no metric changed between the two snapshots")
                return 0
        else:
            if not args.metrics:
                raise _ReportError(
                    "need --metrics FILE or --diff BEFORE AFTER")
            snapshot = _load_snapshot(args.metrics)
        trace_records = _load_trace(args.trace) if args.trace else None
        if getattr(args, "spans", False):
            sections = [s for s in (spans_section(snapshot),
                                    span_latency_section(snapshot))
                        if s is not None]
            if not sections:
                raise _ReportError(
                    "no span series in the snapshot — rerun the fleet "
                    "with predict --spans SAMPLE")
            print("\n\n".join(sections))
            return 0
    except _ReportError as exc:
        print(f"obs-report: {exc}", file=sys.stderr)
        return 2
    sections = report_sections(snapshot, trace_records)
    if change_section is not None:
        sections.append(change_section)
    if clamp_section is not None:
        sections.append(clamp_section)
    print("\n\n".join(sections))
    return 0


def cmd_obs_rules(args: argparse.Namespace) -> int:
    """Lint a ruleset (``--check``) or print the shipped default
    ruleset as TOML (``--print-default``)."""
    from .obs import DEFAULT_RULES, rules_to_toml, validate_rules
    from .obs.rules import load_raw_rules

    if args.print_default:
        print(rules_to_toml(DEFAULT_RULES), end="")
        return 0
    if not args.check:
        print("obs-rules: need --check RULES or --print-default",
              file=sys.stderr)
        return 2
    try:
        raw_rules = load_raw_rules(args.check)
    except (OSError, ValueError) as exc:
        print(f"obs-rules: cannot load {args.check!r}: {exc}",
              file=sys.stderr)
        return 2
    problems = validate_rules(raw_rules)
    if problems:
        for problem in problems:
            print(f"obs-rules: {problem}", file=sys.stderr)
        print(f"obs-rules: {len(problems)} problem(s) in "
              f"{len(raw_rules)} rule(s)", file=sys.stderr)
        return 2
    print(f"obs-rules: {len(raw_rules)} rule(s) OK")
    return 0


def cmd_obs_serve(args: argparse.Namespace) -> int:
    """Replay a log through a live-instrumented fleet while serving
    ``/metrics``, ``/healthz``, ``/quality``, and ``/debug/*``.  Exit
    code reflects the final deadline verdict (0 = feasible, 1 = budget
    blown); SIGTERM drains gracefully (shutdown capsule + final
    ``--metrics`` snapshot) and exits 143."""
    _install_sigterm()
    config = system_by_name(args.system)
    gen = ClusterLogGenerator(config, seed=args.seed)
    live = LiveMonitor(inter_arrival_budget(config))
    quality = None
    if args.truth:
        quality = QualityScoreboard()
        quality.add_failures(read_truth(args.truth))
    spans = SpanClock(args.spans) if args.spans > 0.0 else None
    flight = (FlightRecorder(directory=args.flight_dir)
              if args.flight_dir else None)
    # A serving fleet self-monitors by default: history + the shipped
    # ruleset, unless the flags say otherwise.
    history, rules = _make_history(
        args.history, args.rules, default_on=True)
    obs = Observability(live=live, quality=quality, spans=spans,
                        flight=flight, history=history, rules=rules)
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        backend=args.backend, obs=obs,
        scan_backend=getattr(args, "scan_backend", "str"),
    )
    ingest = IngestStats()
    events = _read_events(args, ingest)
    if ingest.lines_read:
        obs.record_ingest(ingest)
        summary = _ingest_summary(ingest)
        if summary is not None:
            print(summary, flush=True)
    n_slices = max(1, args.slices)
    size = max(1, math.ceil(len(events) / n_slices)) if events else 1

    def write_metrics() -> None:
        if getattr(args, "metrics", None):
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(obs.prometheus())

    try:
        with ObsServer(obs, host=args.host, port=args.port) as server:
            print(f"serving {server.url('/metrics')} "
                  f"(also /healthz /quality /alerts /debug/spans "
                  f"/debug/flight /debug/vars /debug/history)", flush=True)
            for start in range(0, len(events), size):
                fleet.run(events[start:start + size])
                if args.pace > 0:
                    time.sleep(args.pace)
            verdict = live.verdict()
            if verdict is not None:
                state = "PASS" if verdict.ok else "FAIL"
                print(f"deadline {state}: p{verdict.quantile:g} latency "
                      f"{verdict.latency * 1e3:.4f} ms vs budget "
                      f"{verdict.budget * 1e3:.4f} ms "
                      f"({verdict.observed} predictions, "
                      f"burn {verdict.burn_rate:.3f})")
            firing = obs.rules.firing() if obs.rules is not None else []
            if firing:
                print("alerts firing: " + ", ".join(
                    f"{r.id} ({r.severity})" for r in firing))
            if flight is not None and flight.last_capsule_path is not None:
                print(f"flight capsule ({flight.last_reason}): "
                      f"{flight.last_capsule_path}")
            if args.hold:
                print("stream done; serving until interrupted (Ctrl-C)",
                      flush=True)
                try:
                    while True:
                        time.sleep(1.0)
                except KeyboardInterrupt:
                    pass
    except _Terminated as term:
        # Graceful drain: the ObsServer context already closed on
        # unwind; freeze the capsule + final snapshot and exit 143.
        print(f"obs-serve: {term.signame} — draining", file=sys.stderr)
        _flush_shutdown(obs, term.signame)
        write_metrics()
        return SIGTERM_EXIT
    write_metrics()
    return 0 if verdict is None or verdict.ok else 1


def _parse_endpoint(value: str, default_host: str = "127.0.0.1"):
    """``HOST:PORT``, ``:PORT``, or bare ``PORT`` → ``(host, port)``."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = default_host, value
    if not host:
        host = default_host
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"invalid endpoint {value!r}: want HOST:PORT")


def _serve_bundle(args: argparse.Namespace):
    """The daemon's predictor bundle: an explicit ``--bundle`` file, or
    one derived from the simulator's trained chains (needs numpy)."""
    from .persistence import BundleError, PredictorBundle

    if args.bundle:
        try:
            return PredictorBundle.load(args.bundle)
        except (OSError, BundleError) as exc:
            raise SystemExit(f"serve: cannot load bundle "
                             f"{args.bundle!r}: {exc}")
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    return PredictorBundle(
        store=gen.store, chains=gen.chains,
        timeout=gen.recommended_timeout, system=args.system)


def _make_serve_history(history_interval, rules_source):
    """Serve self-monitors by default with the daemon ruleset (the
    shipped rules plus shard-down / handoff-spike / backpressure);
    explicit flags win."""
    from .obs import HistoryRing, RuleEngine, daemon_ruleset

    if history_interval is None and rules_source is None:
        return HistoryRing(), RuleEngine(daemon_ruleset())
    return _make_history(history_interval, rules_source, default_on=False)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sharded live-ingest daemon until SIGTERM/SIGINT, then
    drain gracefully and write the run's accounting."""
    from .core.daemon import FleetDaemon

    _install_sigterm()
    bundle = _serve_bundle(args)
    flight = (FlightRecorder(directory=args.flight_dir)
              if args.flight_dir else None)
    history, rules = _make_serve_history(args.history, args.rules)
    obs = Observability(flight=flight, history=history, rules=rules)
    try:
        daemon = FleetDaemon(
            bundle,
            n_shards=args.shards,
            on_error=args.on_error,
            scan_backend=getattr(args, "scan_backend", "str"),
            chunk_lines=args.chunk_lines,
            high_water_chunks=args.high_water,
            reorder_horizon=args.reorder_horizon,
            obs=obs,
        )
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    daemon.start()
    if not daemon.wait_ready(60.0):
        daemon.stop(drain=False)
        raise SystemExit("serve: workers failed to come up")
    endpoints = []
    # No explicit source → an ephemeral TCP listener, so a bare
    # ``aarohi serve`` is immediately usable (the bound port prints).
    if args.tcp or not (args.unix or args.tail):
        host, port = _parse_endpoint(args.tcp or "127.0.0.1:0")
        bound = daemon.listen_tcp(host, port)
        endpoints.append(f"tcp {bound[0]}:{bound[1]}")
    if args.unix:
        endpoints.append(f"unix {daemon.listen_unix(args.unix)}")
    for path in args.tail or []:
        daemon.tail_file(path)
        endpoints.append(f"tail {path}")
    server = None
    if args.http_port is not None:
        server = ObsServer(
            obs, host=args.http_host, port=args.http_port).start()
        endpoints.append(f"http {server.url('/metrics')}")
    print("serve: " + "; ".join(endpoints), flush=True)
    print(f"daemon ready: {args.shards} shard(s), "
          f"on_error={args.on_error}", flush=True)
    signame = None
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        signame = "SIGINT"
    except _Terminated as term:
        signame = term.signame
    print(f"serve: {signame} — draining", file=sys.stderr, flush=True)
    report = daemon.stop(drain=True)
    _flush_shutdown(obs, signame)
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for p in report.predictions:
                fh.write(_json.dumps({
                    "node": p.node,
                    "chain": p.chain_id,
                    "flagged_at": p.flagged_at,
                    "prediction_time": p.prediction_time,
                }) + "\n")
        print(f"wrote {len(report.predictions)} predictions to {args.out}",
              file=sys.stderr)
    if server is not None:
        server.close()
    status = daemon.status()
    summary = _ingest_summary(report.ingest)
    drained = "drained" if report.drained else "DRAIN TIMED OUT"
    print(f"serve: {drained}; {len(report.predictions)} predictions; "
          f"{status['worker_deaths']} worker death(s), "
          f"{status['handoffs']} handoff(s), "
          f"{status['chains_restored']} chain(s) restored",
          file=sys.stderr)
    if summary is not None:
        print(summary, file=sys.stderr)
    return SIGTERM_EXIT if signame == "SIGTERM" else 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a log file as a live byte stream — the forwarder half of
    a ``serve`` drill — to a TCP endpoint or stdout."""
    import socket

    from .logsim import file_sink, stream_log, tcp_sink

    if args.pace < 0:
        raise SystemExit("stream: --pace must be >= 0")
    try:
        if args.tcp:
            host, port = _parse_endpoint(args.tcp)
            with socket.create_connection((host, port)) as sock:
                stats = stream_log(
                    args.log, tcp_sink(sock),
                    pace=args.pace, chunk=args.chunk)
        else:
            stats = stream_log(
                args.log, file_sink(sys.stdout.buffer),
                pace=args.pace, chunk=args.chunk)
    except OSError as exc:
        raise SystemExit(f"stream: {exc}")
    parts = [f"streamed {stats.lines} lines "
             f"({stats.bytes_sent} bytes, {stats.flushes} flushes)"]
    if stats.sleeps:
        parts.append(f"slept {stats.slept_seconds:.2f}s "
                     f"across {stats.sleeps} waits")
    if stats.unparsed_times:
        parts.append(f"{stats.unparsed_times} records inherited their "
                     "schedule (unparseable timestamps)")
    print("; ".join(parts), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aarohi",
        description="Aarohi (IPDPS'20) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a cluster log window")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=6)
    p.add_argument("--out", default="window.log")
    p.add_argument("--truth", default=None, metavar="TRUTH.jsonl",
                   help="also write injected-failure ground truth (JSONL)")
    p.add_argument("--corrupt", type=float, default=0.0, metavar="P",
                   help="inject every corruption kind (truncation, "
                        "garbling, duplication, reordering, skew, drops) "
                        "at probability P (default: 0, pristine output)")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("rules", help="print Algorithm 1's rule derivation")
    _add_system_arg(p)
    p.add_argument("--flat", action="store_true", help="skip LALR factoring")
    p.set_defaults(func=cmd_rules)

    p = sub.add_parser("predict", help="run the fleet over a log file")
    _add_system_arg(p)
    p.add_argument("--log", required=True)
    p.add_argument("--backend", default="matcher", choices=["matcher", "lalr"])
    p.add_argument("--scan-backend", default="str",
                   choices=["str", "bytes", "numpy", "native"],
                   help="scan kernel family: str (decoded text), bytes "
                        "(mmap byte pipeline), numpy (vectorized sweep; "
                        "falls back to bytes without numpy), native "
                        "(compiled C kernel; falls back to bytes without "
                        "a C compiler)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a table")
    p.add_argument("--watch", action="store_true",
                   help="refreshing dashboard: funnel, latency quantiles, "
                        "SLO budget, quality")
    p.add_argument("--slices", type=int, default=20,
                   help="stream slices per --watch refresh (default 20)")
    p.add_argument("--truth", default=None, metavar="TRUTH.jsonl",
                   help="ground-truth failures (enables the online "
                        "quality scoreboard)")
    _add_ingest_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("pipeline", help="full two-phase run with metrics")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=8)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("speedup", help="Table VI-style timing comparison")
    _add_system_arg(p)
    p.add_argument("--length", type=int, default=50)
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("compile",
                       help="emit a standalone predictor module (codegen)")
    _add_system_arg(p)
    p.add_argument("--out", default="aarohi_predictor.py")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "obs-report",
        help="summarize a --metrics snapshot (funnel, latency, lifecycle)")
    p.add_argument("--metrics", default=None, metavar="OUT.prom",
                   help="Prometheus text file written by predict --metrics")
    p.add_argument("--trace", default=None, metavar="TRACE.jsonl",
                   help="optional trace file for the lifecycle roll-up")
    p.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                   default=None,
                   help="render the delta between two snapshots instead")
    p.add_argument("--spans", action="store_true",
                   help="print only the pipeline stage span tables")
    p.add_argument("--history", default=None, metavar="HISTORY",
                   help="render min/p50/max trend tables from a history "
                        "NDJSON dump (/debug/history) or an alert_rule "
                        "flight capsule")
    p.set_defaults(func=cmd_obs_report)

    p = sub.add_parser(
        "obs-rules",
        help="lint an alert-rules file (or print the shipped defaults)")
    p.add_argument("--check", default=None, metavar="RULES",
                   help="validate a [[rule]] TOML file (or the literal "
                        "word 'default'); exit 2 on problems")
    p.add_argument("--print-default", action="store_true",
                   help="print the shipped default ruleset as TOML")
    p.set_defaults(func=cmd_obs_rules)

    p = sub.add_parser(
        "obs-serve",
        help="replay a log through a live fleet while serving /metrics")
    _add_system_arg(p)
    p.add_argument("--log", required=True)
    p.add_argument("--backend", default="matcher",
                   choices=["matcher", "lalr"])
    p.add_argument("--scan-backend", default="str",
                   choices=["str", "bytes", "numpy", "native"],
                   help="scan kernel family (see predict --scan-backend)")
    p.add_argument("--truth", default=None, metavar="TRUTH.jsonl",
                   help="ground-truth failures (enables /quality scoring)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9464,
                   help="HTTP port (0 = ephemeral; default 9464)")
    p.add_argument("--slices", type=int, default=20,
                   help="process the stream in this many batches")
    p.add_argument("--pace", type=float, default=0.0,
                   help="sleep this many seconds between batches")
    p.add_argument("--hold", action="store_true",
                   help="keep serving after the stream ends (Ctrl-C exits)")
    p.add_argument("--spans", type=float, default=0.0, metavar="SAMPLE",
                   help="time pipeline stages on this fraction of runs "
                        "(serves /debug/spans; default: 0, off)")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="arm the flight recorder; capsules land in DIR "
                        "and on /debug/flight")
    p.add_argument("--history", type=float, default=None,
                   metavar="SECONDS",
                   help="history-ring capture interval (default: armed "
                        "with interval 0 — every batch)")
    p.add_argument("--rules", default=None, metavar="RULES",
                   help="alert rules: a [[rule]] TOML file or 'default' "
                        "(default: the shipped ruleset; serves /alerts)")
    p.add_argument("--metrics", metavar="OUT.prom", default=None,
                   help="write the final metrics snapshot here on exit "
                        "(including SIGTERM graceful drain)")
    _add_ingest_args(p)
    p.set_defaults(func=cmd_obs_serve)

    p = sub.add_parser(
        "serve",
        help="persistent sharded live-ingest daemon (TCP/unix/tail)")
    _add_system_arg(p)
    p.add_argument("--bundle", default=None, metavar="BUNDLE.json",
                   help="serve this saved predictor bundle instead of "
                        "deriving one from the simulator (no numpy "
                        "needed)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker shard processes (default 2)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="accept line streams on this TCP endpoint "
                        "(port 0 = ephemeral; default when no source "
                        "flag is given: 127.0.0.1:0)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="accept line streams on a unix socket at PATH")
    p.add_argument("--tail", action="append", default=None, metavar="FILE",
                   help="follow FILE like tail -F, surviving logrotate "
                        "(repeatable)")
    p.add_argument("--http-host", default="127.0.0.1")
    p.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics /healthz /alerts /debug/* on "
                        "this port (0 = ephemeral; default: no HTTP)")
    p.add_argument("--chunk-lines", type=int, default=256,
                   help="lines per worker chunk (default 256)")
    p.add_argument("--high-water", type=int, default=32,
                   help="unacked chunks per shard before ingest stalls "
                        "(backpressure; default 32)")
    p.add_argument("--scan-backend", default="str",
                   choices=["str", "bytes", "numpy", "native"],
                   help="scan kernel family (see predict --scan-backend)")
    p.add_argument("--out", default=None, metavar="PRED.jsonl",
                   help="write the session's predictions here on exit")
    p.add_argument("--metrics", metavar="OUT.prom", default=None,
                   help="write the final metrics snapshot here on exit")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="arm the flight recorder (shutdown + alert "
                        "capsules land in DIR)")
    p.add_argument("--history", type=float, default=None, metavar="SECONDS",
                   help="history-ring capture interval (default: armed "
                        "with interval 0 — every supervisor tick)")
    p.add_argument("--rules", default=None, metavar="RULES",
                   help="alert rules: a [[rule]] TOML file or 'default' "
                        "(default: the daemon ruleset — shipped rules "
                        "plus shard-down/handoff/backpressure)")
    _add_ingest_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "stream",
        help="replay a log file as a live (optionally paced) stream")
    p.add_argument("--log", required=True)
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="stream to this TCP endpoint (default: stdout)")
    p.add_argument("--pace", type=float, default=0.0,
                   help="speed multiplier over event time: 1 = real "
                        "time, 60 = a minute of log per second "
                        "(default 0 = blast)")
    p.add_argument("--chunk", type=int, default=256,
                   help="records per sink write (default 256)")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser("fieldstudy", help="longitudinal failure statistics")
    _add_system_arg(p)
    p.add_argument("--windows", type=int, default=8)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=5)
    p.set_defaults(func=cmd_fieldstudy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
