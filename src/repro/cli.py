"""Command-line interface: ``aarohi <subcommand>``.

Thin wrappers over the library so each piece of the paper's workflow
(Fig. 6) is drivable from a shell:

* ``generate`` — synthesize a cluster log window to a file
* ``rules`` — print Algorithm 1's rule derivation (Table IV style)
* ``predict`` — run the predictor fleet over a log file
* ``pipeline`` — full two-phase run (generate → mine → predict → metrics)
* ``speedup`` — quick Table VI-style comparison on this machine
"""

from __future__ import annotations

import argparse
import sys
from statistics import mean
from typing import List, Optional

from .core import PredictorFleet, build_rules, pair_predictions
from .logsim import ClusterLogGenerator, read_log, system_by_name, write_log
from .reporting import render_table


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default="HPC3",
        choices=["HPC1", "HPC2", "HPC3", "HPC4"],
        help="which Table II system to simulate",
    )
    parser.add_argument("--seed", type=int, default=7)


def cmd_generate(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    window = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures,
    )
    count = write_log(window.events, args.out)
    print(f"wrote {count} events for {len(window.nodes)} nodes to {args.out}")
    print(f"injected {len(window.failures)} failures "
          f"({sum(1 for i in window.injections if i.kind == 'novel')} novel)")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    rule_set = build_rules(gen.chains, factor=not args.flat)
    print(rule_set.describe())
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        backend=args.backend,
    )
    report = fleet.run(read_log(args.log))
    rows = [
        (p.node, p.chain_id, f"{p.flagged_at:.3f}",
         f"{p.prediction_time * 1e3:.4f}")
        for p in report.predictions
    ]
    print(render_table(
        ["node", "chain", "flagged_at (s)", "prediction time (ms)"], rows,
        title=f"{len(rows)} predictions "
              f"({report.fc_related_fraction:.1%} of phrases FC-related)",
    ))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from .training import (
        EventLabeler, anomaly_sequences, confusion_from_predictions,
        mine_chains, terminal_tokens,
    )

    config = system_by_name(args.system)
    gen = ClusterLogGenerator(config, seed=args.seed)
    train = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)
    test = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)

    labeler = EventLabeler(gen.store)
    sequences = anomaly_sequences(labeler.label_stream(train.events))
    terminals = terminal_tokens(gen.store, ["node down", "node *", "shutting down"])
    mined = mine_chains(sequences, terminals, min_support=1)
    print(f"Phase 1: mined {len(mined.chains)} chains "
          f"from {len(mined.candidates)} candidates")

    fleet = PredictorFleet.from_store(
        mined.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(test.events)
    pairing = pair_predictions(report.predictions, test.failures)
    confusion = confusion_from_predictions(
        report.predictions, test.failures, test.nodes)
    pct = confusion.as_percentages()
    print(render_table(
        ["metric", "value"],
        [
            ("recall %", f"{pct['recall']:.1f}"),
            ("precision %", f"{pct['precision']:.1f}"),
            ("accuracy %", f"{pct['accuracy']:.1f}"),
            ("FNR %", f"{pct['fnr']:.1f}"),
            ("mean lead time (min)", f"{pairing.mean_lead_time() / 60:.2f}"),
            ("mean prediction time (ms)",
             f"{pairing.mean_prediction_time() * 1e3:.4f}"),
        ],
        title=f"{config.name} two-phase pipeline",
    ))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    from .baselines import (
        AarohiMessageDetector, CloudSeerMessageDetector, DeepLogDetector,
        DeshDetector, KeyedLSTMMessageDetector, repeat_message_checks,
    )
    from .templates.store import NaiveTemplateScanner

    import numpy as np

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    chains = gen.chains
    rng = np.random.default_rng(args.seed)
    chain_def = max(gen.trained_defs, key=lambda d: len(d.phrase_keys))
    entries = []
    for i in range(args.length):
        key = chain_def.phrase_keys[i % len(chain_def.phrase_keys)]
        entries.append((gen.catalog.anomaly(key).make(rng, "c0-0c0s0n0"), float(i)))
    scanner = NaiveTemplateScanner(gen.store, keep=chains.token_set)
    detectors = [
        AarohiMessageDetector(chains, gen.store, timeout=1e9),
        KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(chains, epochs=5, seed=1)),
        KeyedLSTMMessageDetector(
            "DeepLog", scanner,
            DeepLogDetector.train([c.tokens for c in chains], epochs=5, seed=1)),
        CloudSeerMessageDetector(chains, gen.store),
    ]
    rows = []
    for det in detectors:
        runs = repeat_message_checks(det, entries, repeats=5)
        rows.append((det.name, f"{mean(r.msecs for r in runs):.4f}"))
    print(render_table(
        ["approach", f"time for {args.length}-length check (ms)"], rows,
        title="Prediction-time comparison (Table VI shape)",
    ))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .codegen import emit_predictor_source

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    source = emit_predictor_source(
        gen.chains, gen.store, timeout=gen.recommended_timeout)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(source)
    print(f"wrote standalone predictor ({len(source.splitlines())} lines, "
          f"{len(gen.chains)} chains) to {args.out}")
    return 0


def cmd_fieldstudy(args: argparse.Namespace) -> int:
    from .analysis import (
        fit_weibull, inter_failure_stats, inter_failure_times, run_campaign,
    )

    campaign = run_campaign(
        system_by_name(args.system), windows=args.windows,
        duration=args.duration, n_nodes=args.nodes,
        failures_per_window=args.failures, seed=args.seed)
    stats = inter_failure_stats(campaign.failures)
    weibull = fit_weibull(inter_failure_times(campaign.failures))
    print(render_table(
        ["statistic", "value"],
        [
            ("windows", campaign.windows),
            ("failures", stats.count),
            ("MTBF (min)", f"{stats.mtbf / 60:.1f}"),
            ("Weibull shape", f"{weibull.shape:.2f}"),
            ("campaign recall", f"{campaign.recall:.1%}"),
        ],
        title=f"{campaign.system} longitudinal field study"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aarohi",
        description="Aarohi (IPDPS'20) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a cluster log window")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=6)
    p.add_argument("--out", default="window.log")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("rules", help="print Algorithm 1's rule derivation")
    _add_system_arg(p)
    p.add_argument("--flat", action="store_true", help="skip LALR factoring")
    p.set_defaults(func=cmd_rules)

    p = sub.add_parser("predict", help="run the fleet over a log file")
    _add_system_arg(p)
    p.add_argument("--log", required=True)
    p.add_argument("--backend", default="matcher", choices=["matcher", "lalr"])
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("pipeline", help="full two-phase run with metrics")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=8)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("speedup", help="Table VI-style timing comparison")
    _add_system_arg(p)
    p.add_argument("--length", type=int, default=50)
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("compile",
                       help="emit a standalone predictor module (codegen)")
    _add_system_arg(p)
    p.add_argument("--out", default="aarohi_predictor.py")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("fieldstudy", help="longitudinal failure statistics")
    _add_system_arg(p)
    p.add_argument("--windows", type=int, default=8)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=5)
    p.set_defaults(func=cmd_fieldstudy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
