"""Command-line interface: ``aarohi <subcommand>``.

Thin wrappers over the library so each piece of the paper's workflow
(Fig. 6) is drivable from a shell:

* ``generate`` — synthesize a cluster log window to a file
* ``rules`` — print Algorithm 1's rule derivation (Table IV style)
* ``predict`` — run the predictor fleet over a log file
* ``pipeline`` — full two-phase run (generate → mine → predict → metrics)
* ``speedup`` — quick Table VI-style comparison on this machine
* ``obs-report`` — render a ``--metrics`` snapshot (and optionally a
  ``--trace`` file) as funnel / latency / lifecycle summaries
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from statistics import mean
from typing import List, Optional

from .core import PredictorFleet, build_rules, pair_predictions
from .logsim import ClusterLogGenerator, read_log, system_by_name, write_log
from .obs import Observability, Tracer
from .reporting import render_table


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default="HPC3",
        choices=["HPC1", "HPC2", "HPC3", "HPC4"],
        help="which Table II system to simulate",
    )
    parser.add_argument("--seed", type=int, default=7)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="OUT.prom", default=None,
        help="write a Prometheus text-format metrics snapshot here",
    )
    parser.add_argument(
        "--trace", metavar="TRACE.jsonl", default=None,
        help="write prediction-lifecycle trace records (JSONL) here",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of chain activations to trace (default: all)",
    )


def _make_obs(args: argparse.Namespace) -> Optional[Observability]:
    """Build the Observability the flags ask for (None = fully off)."""
    if not (args.metrics or args.trace):
        return None
    tracer = None
    if args.trace:
        tracer = Tracer(args.trace, sample=args.trace_sample)
    return Observability(tracer=tracer)


def _finish_obs(args: argparse.Namespace, obs: Optional[Observability]) -> None:
    if obs is None:
        return
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus())
    obs.close()


def cmd_generate(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    window = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures,
    )
    count = write_log(window.events, args.out)
    print(f"wrote {count} events for {len(window.nodes)} nodes to {args.out}")
    print(f"injected {len(window.failures)} failures "
          f"({sum(1 for i in window.injections if i.kind == 'novel')} novel)")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    rule_set = build_rules(gen.chains, factor=not args.flat)
    print(rule_set.describe())
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        backend=args.backend, obs=obs,
    )
    report = fleet.run(read_log(args.log))
    _finish_obs(args, obs)
    if args.json:
        print(_json.dumps({
            "system": args.system,
            "predictions": [
                {
                    "node": p.node,
                    "chain": p.chain_id,
                    "flagged_at": p.flagged_at,
                    "prediction_time": p.prediction_time,
                }
                for p in report.predictions
            ],
            "stats": {
                "lines_seen": report.lines_seen,
                "lines_tokenized": report.lines_tokenized,
                "fc_related_fraction": report.fc_related_fraction,
                "nodes": report.nodes,
            },
        }, indent=2))
        return 0
    rows = [
        (p.node, p.chain_id, f"{p.flagged_at:.3f}",
         f"{p.prediction_time * 1e3:.4f}")
        for p in report.predictions
    ]
    print(render_table(
        ["node", "chain", "flagged_at (s)", "prediction time (ms)"], rows,
        title=f"{len(rows)} predictions "
              f"({report.fc_related_fraction:.1%} of phrases FC-related)",
    ))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from .training import (
        EventLabeler, anomaly_sequences, confusion_from_predictions,
        mine_chains, terminal_tokens,
    )

    config = system_by_name(args.system)
    gen = ClusterLogGenerator(config, seed=args.seed)
    train = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)
    test = gen.generate_window(
        duration=args.duration, n_nodes=args.nodes, n_failures=args.failures)

    labeler = EventLabeler(gen.store)
    sequences = anomaly_sequences(labeler.label_stream(train.events))
    terminals = terminal_tokens(gen.store, ["node down", "node *", "shutting down"])
    mined = mine_chains(sequences, terminals, min_support=1)
    if not args.json:
        print(f"Phase 1: mined {len(mined.chains)} chains "
              f"from {len(mined.candidates)} candidates")

    fleet = PredictorFleet.from_store(
        mined.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(test.events)
    pairing = pair_predictions(report.predictions, test.failures)
    confusion = confusion_from_predictions(
        report.predictions, test.failures, test.nodes)
    pct = confusion.as_percentages()
    if args.json:
        print(_json.dumps({
            "system": config.name,
            "mined_chains": len(mined.chains),
            "candidates": len(mined.candidates),
            "predictions": len(report.predictions),
            "failures": len(test.failures),
            "recall_pct": pct["recall"],
            "precision_pct": pct["precision"],
            "accuracy_pct": pct["accuracy"],
            "fnr_pct": pct["fnr"],
            "mean_lead_time_s": pairing.mean_lead_time(),
            "mean_prediction_time_s": pairing.mean_prediction_time(),
        }, indent=2))
        return 0
    print(render_table(
        ["metric", "value"],
        [
            ("recall %", f"{pct['recall']:.1f}"),
            ("precision %", f"{pct['precision']:.1f}"),
            ("accuracy %", f"{pct['accuracy']:.1f}"),
            ("FNR %", f"{pct['fnr']:.1f}"),
            ("mean lead time (min)", f"{pairing.mean_lead_time() / 60:.2f}"),
            ("mean prediction time (ms)",
             f"{pairing.mean_prediction_time() * 1e3:.4f}"),
        ],
        title=f"{config.name} two-phase pipeline",
    ))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    from .baselines import (
        AarohiMessageDetector, CloudSeerMessageDetector, DeepLogDetector,
        DeshDetector, KeyedLSTMMessageDetector, repeat_message_checks,
    )
    from .templates.store import NaiveTemplateScanner

    import numpy as np

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    chains = gen.chains
    rng = np.random.default_rng(args.seed)
    chain_def = max(gen.trained_defs, key=lambda d: len(d.phrase_keys))
    entries = []
    for i in range(args.length):
        key = chain_def.phrase_keys[i % len(chain_def.phrase_keys)]
        entries.append((gen.catalog.anomaly(key).make(rng, "c0-0c0s0n0"), float(i)))
    scanner = NaiveTemplateScanner(gen.store, keep=chains.token_set)
    detectors = [
        AarohiMessageDetector(chains, gen.store, timeout=1e9),
        KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(chains, epochs=5, seed=1)),
        KeyedLSTMMessageDetector(
            "DeepLog", scanner,
            DeepLogDetector.train([c.tokens for c in chains], epochs=5, seed=1)),
        CloudSeerMessageDetector(chains, gen.store),
    ]
    rows = []
    for det in detectors:
        runs = repeat_message_checks(det, entries, repeats=5)
        rows.append((det.name, f"{mean(r.msecs for r in runs):.4f}"))
    print(render_table(
        ["approach", f"time for {args.length}-length check (ms)"], rows,
        title="Prediction-time comparison (Table VI shape)",
    ))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from .codegen import emit_predictor_source

    gen = ClusterLogGenerator(system_by_name(args.system), seed=args.seed)
    source = emit_predictor_source(
        gen.chains, gen.store, timeout=gen.recommended_timeout)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(source)
    print(f"wrote standalone predictor ({len(source.splitlines())} lines, "
          f"{len(gen.chains)} chains) to {args.out}")
    return 0


def cmd_fieldstudy(args: argparse.Namespace) -> int:
    from .analysis import (
        fit_weibull, inter_failure_stats, inter_failure_times, run_campaign,
    )

    campaign = run_campaign(
        system_by_name(args.system), windows=args.windows,
        duration=args.duration, n_nodes=args.nodes,
        failures_per_window=args.failures, seed=args.seed)
    stats = inter_failure_stats(campaign.failures)
    weibull = fit_weibull(inter_failure_times(campaign.failures))
    print(render_table(
        ["statistic", "value"],
        [
            ("windows", campaign.windows),
            ("failures", stats.count),
            ("MTBF (min)", f"{stats.mtbf / 60:.1f}"),
            ("Weibull shape", f"{weibull.shape:.2f}"),
            ("campaign recall", f"{campaign.recall:.1%}"),
        ],
        title=f"{campaign.system} longitudinal field study"))
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import (
        CHAIN_MATCHES,
        FLEET_EVENTS_PER_SECOND,
        FLEET_NODES,
        FUNNEL_STAGES,
        LINES_SEEN,
        PREDICTION_SECONDS,
        PREDICTIONS,
        histogram_series,
        lifecycle_counts,
        parse_prometheus,
        read_trace,
    )
    from .reporting import render_bars

    with open(args.metrics, "r", encoding="utf-8") as fh:
        snapshot = parse_prometheus(fh.read())

    def counter_total(name: str) -> float:
        family = snapshot.get(name)
        if not family:
            return 0.0
        return sum(entry["value"] for entry in family["series"])

    sections: List[str] = []

    # 1. The scanner rejection funnel (why the hot path is fast).
    lines_seen = counter_total(LINES_SEEN)
    rows = []
    for name, label in FUNNEL_STAGES:
        count = counter_total(name)
        share = f"{count / lines_seen:.2%}" if lines_seen else "—"
        rows.append((label, f"{count:.0f}", share))
    rows.append(("lines seen", f"{lines_seen:.0f}", "100.00%" if lines_seen else "—"))
    sections.append(render_table(
        ["stage", "lines", "share"], rows, title="Scanner rejection funnel"))

    # 2. Per-prediction latency histogram (log2 buckets).
    for entry in histogram_series(snapshot, PREDICTION_SECONDS):
        labels, counts = entry["labels"], entry["counts"]
        total = sum(counts)
        if not total:
            continue
        lo_exp = entry["lo_exp"]
        bucket_labels, bucket_values = [], []
        for i, count in enumerate(counts):
            if not count:
                continue
            top = 2.0 ** (lo_exp + i)
            bucket_labels.append(
                "+Inf" if i == len(counts) - 1 else f"≤{top:.3g}s")
            bucket_values.append(float(count))
        suffix = f" {labels}" if labels else ""
        mean_s = entry["sum"] / total
        sections.append(render_bars(
            bucket_labels, bucket_values,
            title=(f"Prediction latency{suffix} — {total:.0f} predictions, "
                   f"mean {mean_s * 1e3:.4f} ms"),
        ))

    # 3. Headline fleet numbers.
    summary_rows = [
        ("predictions", f"{counter_total(PREDICTIONS):.0f}"),
        ("chain matches", f"{counter_total(CHAIN_MATCHES):.0f}"),
    ]
    for gauge_name, label in (
        (FLEET_NODES, "fleet nodes"),
        (FLEET_EVENTS_PER_SECOND, "events/s (last run)"),
    ):
        family = snapshot.get(gauge_name)
        if family and family["series"]:
            value = sum(e["value"] for e in family["series"])
            summary_rows.append((label, f"{value:.4g}"))
    sections.append(render_table(
        ["metric", "value"], summary_rows, title="Fleet summary"))

    # 4. Optional lifecycle roll-up from a trace file.
    if args.trace:
        records = read_trace(args.trace)
        counts = lifecycle_counts(records)
        sections.append(render_table(
            ["lifecycle event", "count"],
            [(kind, n) for kind, n in counts.items()],
            title=f"Prediction lifecycle ({len(records)} trace records)"))

    print("\n\n".join(sections))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aarohi",
        description="Aarohi (IPDPS'20) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a cluster log window")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=6)
    p.add_argument("--out", default="window.log")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("rules", help="print Algorithm 1's rule derivation")
    _add_system_arg(p)
    p.add_argument("--flat", action="store_true", help="skip LALR factoring")
    p.set_defaults(func=cmd_rules)

    p = sub.add_parser("predict", help="run the fleet over a log file")
    _add_system_arg(p)
    p.add_argument("--log", required=True)
    p.add_argument("--backend", default="matcher", choices=["matcher", "lalr"])
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a table")
    _add_obs_args(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("pipeline", help="full two-phase run with metrics")
    _add_system_arg(p)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=8)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("speedup", help="Table VI-style timing comparison")
    _add_system_arg(p)
    p.add_argument("--length", type=int, default=50)
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("compile",
                       help="emit a standalone predictor module (codegen)")
    _add_system_arg(p)
    p.add_argument("--out", default="aarohi_predictor.py")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "obs-report",
        help="summarize a --metrics snapshot (funnel, latency, lifecycle)")
    p.add_argument("--metrics", required=True, metavar="OUT.prom",
                   help="Prometheus text file written by predict --metrics")
    p.add_argument("--trace", default=None, metavar="TRACE.jsonl",
                   help="optional trace file for the lifecycle roll-up")
    p.set_defaults(func=cmd_obs_report)

    p = sub.add_parser("fieldstudy", help="longitudinal failure statistics")
    _add_system_arg(p)
    p.add_argument("--windows", type=int, default=8)
    p.add_argument("--duration", type=float, default=3600.0)
    p.add_argument("--nodes", type=int, default=24)
    p.add_argument("--failures", type=int, default=5)
    p.set_defaults(func=cmd_fieldstudy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
