"""Tests for the HTTP exposition server (``/metrics``, ``/healthz``,
``/quality``) against an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.events import NodeFailure, Prediction
from repro.obs import (
    LINES_SEEN,
    LiveMonitor,
    Observability,
    ObsServer,
    QualityScoreboard,
    parse_prometheus,
)
from repro.obs.server import PROMETHEUS_CONTENT_TYPE


def fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


@pytest.fixture()
def obs():
    o = Observability(
        live=LiveMonitor(0.01, clock=lambda: 0.0),
        quality=QualityScoreboard())
    o.registry.counter(LINES_SEEN, "lines").inc(42)
    return o


class TestMetricsEndpoint:
    def test_scrape_parses_and_carries_content_type(self, obs):
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/metrics"))
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        snap = parse_prometheus(body)
        (entry,) = snap[LINES_SEEN]["series"]
        assert entry["value"] == 42

    def test_scrape_refreshes_live_gauges(self, obs):
        obs.live.observe_prediction(0.001)
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/metrics"))
        assert "aarohi_live_prediction_latency_seconds" in body
        assert "aarohi_deadline_ok 1" in body

    def test_ephemeral_ports_do_not_collide(self, obs):
        with ObsServer(obs) as a, ObsServer(obs) as b:
            assert a.port != b.port

    def test_ephemeral_bind_publishes_chosen_port(self, obs):
        server = ObsServer(obs, port=0)
        try:
            assert server.port != 0
            assert str(server.port) in server.url("/healthz")
        finally:
            server.close()

    def test_restart_rebinds_same_port(self, obs):
        # Daemon-restart contract: close with live TIME_WAIT remnants,
        # then immediately rebind the identical host:port.  Without
        # allow_reuse_address this raises EADDRINUSE.
        first = ObsServer(obs).start()
        port = first.port
        fetch(first.url("/metrics"))  # leave a connection in TIME_WAIT
        first.close()
        second = ObsServer(obs, host=first.host, port=port).start()
        try:
            assert second.port == port
            status, _, _ = fetch(second.url("/metrics"))
            assert status == 200
        finally:
            second.close()

    def test_reuse_address_is_explicit(self):
        from repro.obs.server import _ReusableHTTPServer

        # The restart path must not lean on the stdlib default.
        assert "allow_reuse_address" in vars(_ReusableHTTPServer)
        assert _ReusableHTTPServer.allow_reuse_address is True


class TestHealthz:
    def test_healthy_fleet_returns_200(self, obs):
        obs.live.observe_prediction(0.001)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/healthz"))
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["deadline"]["ok"] is True

    def test_busted_deadline_returns_503(self, obs):
        for _ in range(100):
            obs.live.observe_prediction(0.5)  # way past the 10 ms budget
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["status"] == "failing"
        assert payload["deadline"]["ok"] is False

    def test_tripped_drift_returns_503(self, obs):
        obs.quality.drift.reference = 0.99
        obs.quality.drift.warmup = 0
        for _ in range(30):
            obs.quality.record_discard(900, 1000)
        assert obs.quality.drift.tripped
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
        assert excinfo.value.code == 503

    def test_health_hook_block_and_gate(self, obs):
        # The daemon mounts its service plane through a named hook:
        # the block lands in the payload, and ok=False flips the probe.
        obs.live.observe_prediction(0.001)
        shard_state = {"ok": True, "shards": 2, "up": 2}
        obs.add_health_hook("daemon", lambda: dict(shard_state))
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/healthz"))
            assert json.loads(body)["daemon"]["shards"] == 2
            shard_state.update(ok=False, up=1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "failing"
            assert payload["daemon"]["up"] == 1
            shard_state.update(ok=True, up=2)  # recovery: probe goes green
            status, _, body = fetch(server.url("/healthz"))
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_debug_provider_block(self, obs):
        obs.add_debug_provider("daemon", lambda: {"connections": 3})
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/debug/vars"))
        assert json.loads(body)["daemon"]["connections"] == 3


class TestQualityEndpoint:
    def test_scoreboard_json(self, obs):
        obs.quality.add_prediction(Prediction(
            node="n1", chain_id="FC_1", flagged_at=100.0,
            prediction_time=0.0))
        obs.quality.add_failure(NodeFailure(node="n1", time=400.0))
        obs.quality.advance(500.0)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/quality"))
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["true_positives"] == 1
        assert payload["lead_times"] == [300.0]

    def test_disabled_scoreboard(self):
        obs = Observability()
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/quality"))
        assert json.loads(body) == {"enabled": False}


class TestUnknownPath:
    def test_404(self, obs):
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/nope"))
        assert excinfo.value.code == 404


class TestDebugEndpoints:
    def _spanned_obs(self):
        from repro.obs import FlightRecorder, SpanClock

        return Observability(
            spans=SpanClock(1.0), flight=FlightRecorder(capacity=32))

    def test_debug_spans_serves_local_and_shard_views(self):
        from repro.obs import SPAN_RUNS

        obs = self._spanned_obs()
        timer = obs.spans.start_run()
        timer.lap("decode", 10)
        timer.lap("match", 10)
        obs.record_spans(timer)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/debug/spans"))
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["local"]["runs_sampled"] == 1
        stages = {s["stage"] for s in payload["local"]["stages"]}
        assert stages == {"decode", "match"}
        assert "-" in payload["shards"]

    def test_debug_spans_without_clock_reports_disabled(self):
        obs = Observability()
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/debug/spans"))
        assert json.loads(body)["enabled"] is False

    def test_debug_flight_404_until_triggered_then_exact_capsule(
            self, tmp_path):
        from repro.obs import FlightRecorder, TRIGGER_DRIFT

        obs = Observability(
            flight=FlightRecorder(capacity=16, directory=tmp_path))
        obs.flight.note("fleet_run", events=100)
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/debug/flight"))
            assert excinfo.value.code == 404
            text = obs.flight.trigger(
                TRIGGER_DRIFT, snapshot=obs.registry.snapshot())
            status, ctype, body = fetch(server.url("/debug/flight"))
        assert status == 200
        assert ctype == "application/x-ndjson"
        # Endpoint == in-memory capsule == on-disk file, byte for byte.
        assert body == text
        assert obs.flight.last_capsule_path.read_text(
            encoding="utf-8") == body

    def test_debug_vars_carries_build_scanner_and_registry(self):
        obs = self._spanned_obs()
        obs.registry.counter(LINES_SEEN, "lines").inc(7)
        with ObsServer(obs) as server:
            status, _, body = fetch(server.url("/debug/vars"))
        assert status == 200
        payload = json.loads(body)
        assert "version" in payload["build"]
        assert "python" in payload["build"]
        assert payload["spans"]["sample"] == 1.0
        assert payload["flight"]["capacity"] == 32
        assert payload["registry"][LINES_SEEN]["series"][0]["value"] == 7

    def test_404_lists_debug_paths(self, obs):
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/nope"))
        assert excinfo.value.code == 404
        assert "/debug/spans" in excinfo.value.read().decode("utf-8")


class TestAlertsEndpoint:
    def _ruled_obs(self):
        from repro.obs import HistoryRing, RuleEngine
        from repro.obs.names import SLO_BURN

        obs = Observability(
            history=HistoryRing(interval=0.0), rules=RuleEngine("default"))
        obs.registry.gauge(SLO_BURN, "burn").set(2.0)
        return obs

    def test_alerts_serves_rule_state_and_since_timestamps(self):
        obs = self._ruled_obs()
        obs.record_history(now=100.0)          # breach → pending
        obs.record_history(now=102.0, force=True)  # held 2 s ≥ 1 s → firing
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/alerts"))
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["firing"] == ["deadline-burn"]
        rows = {row["id"]: row for row in payload["rules"]}
        burn = rows["deadline-burn"]
        assert burn["state"] == "firing"
        assert burn["pending_since"] == 100.0
        assert burn["firing_since"] == 102.0
        assert burn["severity"] == "page"
        # The declarative definition rides along with the state.
        assert burn["expr"] == "max_over_time"
        assert burn["for"] == 1.0
        assert payload["history"]["samples"] == 2

    def test_alerts_disabled_without_engine(self, obs):
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/alerts"))
        assert json.loads(body) == {"enabled": False}

    def test_firing_page_rule_fails_healthz(self):
        obs = self._ruled_obs()
        obs.record_history(now=100.0)
        obs.record_history(now=102.0, force=True)
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        # healthz names the same firing rule /alerts shows.
        assert payload["alerts"]["firing"] == ["deadline-burn"]


class TestDebugHistory:
    def test_404_until_ring_armed(self, obs):
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/debug/history"))
        assert excinfo.value.code == 404

    def test_ndjson_dump_and_series_filter(self):
        from repro.obs import HistoryRing, parse_history_ndjson

        obs = Observability(history=HistoryRing(interval=0.0))
        obs.registry.counter(LINES_SEEN, "lines").inc(42)
        obs.record_history(now=100.0)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/debug/history"))
            _, _, filtered = fetch(
                server.url(f"/debug/history?series={LINES_SEEN}"))
        assert status == 200
        assert ctype == "application/x-ndjson"
        records = parse_history_ndjson(body)
        assert records == obs.history_records()
        only = parse_history_ndjson(filtered)
        assert {r["series"] for r in only} == {LINES_SEEN}
        assert only[0]["value"] == 42.0


class TestConcurrentScrapes:
    """Scrapes racing a running fleet must see whole snapshots: the
    facade lock makes every multi-metric record atomic, so the funnel
    identity holds on every response, mid-run included."""

    def _make_fleet(self):
        from repro.core import ChainSet, FailureChain, PredictorFleet
        from repro.core.events import Severity
        from repro.obs import SpanClock
        from repro.templates import TemplateStore

        store = TemplateStore()
        store.add("alpha fault *", Severity.ERRONEOUS, token=301)
        store.add("beta warn *", Severity.UNKNOWN, token=302)
        chains = ChainSet([FailureChain("FC_x", (301, 302))])
        obs = Observability(
            live=LiveMonitor(0.01, clock=lambda: 0.0),
            quality=QualityScoreboard(),
            spans=SpanClock(1.0))
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, obs=obs)
        return fleet, obs

    def test_funnel_identity_holds_mid_scrape(self):
        import threading

        from repro.core import LogEvent
        from repro.obs import (
            SCANNER_DFA_RUNS,
            SCANNER_FIRST_CHAR_REJECTED,
            SCANNER_MEMO_HITS,
        )

        fleet, obs = self._make_fleet()
        events = [
            LogEvent(float(i), f"n{i % 4}",
                     "alpha fault 12" if i % 3 == 0 else "benign noise")
            for i in range(200)
        ]
        stop = threading.Event()
        torn: list = []

        def scrape(server):
            while not stop.is_set():
                _, _, body = fetch(server.url("/metrics"))
                snap = parse_prometheus(body)
                if LINES_SEEN not in snap:
                    continue  # scraped before the first run recorded
                seen = snap[LINES_SEEN]["series"][0]["value"]
                funnel = sum(
                    snap[name]["series"][0]["value"]
                    for name in (SCANNER_FIRST_CHAR_REJECTED,
                                 SCANNER_MEMO_HITS, SCANNER_DFA_RUNS)
                    if name in snap)
                if funnel != seen:
                    torn.append((seen, funnel))
                # /quality races the same lock from another thread.
                fetch(server.url("/quality"))

        with ObsServer(obs) as server:
            threads = [
                threading.Thread(target=scrape, args=(server,), daemon=True)
                for _ in range(3)
            ]
            for t in threads:
                t.start()
            try:
                for _ in range(30):
                    fleet.run(events, timing="off")
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=10.0)
        assert torn == []
        assert not any(t.is_alive() for t in threads)


class TestMidRunScrape:
    def test_scrape_during_fleet_progress(self):
        """A scrape between two runs of the same fleet sees coherent,
        monotone counters (the live-dashboard contract)."""
        from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
        from repro.core.events import Severity
        from repro.templates import TemplateStore

        store = TemplateStore()
        store.add("alpha fault *", Severity.ERRONEOUS, token=301)
        store.add("beta warn *", Severity.UNKNOWN, token=302)
        chains = ChainSet([FailureChain("FC_x", (301, 302))])
        obs = Observability(live=LiveMonitor(0.01, clock=lambda: 0.0))
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, obs=obs)
        events = [
            LogEvent(float(i), "n0", "benign noise") for i in range(50)
        ]
        with ObsServer(obs) as server:
            fleet.run(events, timing="off")
            _, _, body = fetch(server.url("/metrics"))
            first = parse_prometheus(body)[LINES_SEEN]["series"][0]["value"]
            fleet.run(events, timing="off")
            _, _, body = fetch(server.url("/metrics"))
            second = parse_prometheus(body)[LINES_SEEN]["series"][0]["value"]
        assert (first, second) == (50, 100)
