"""Tests for the HTTP exposition server (``/metrics``, ``/healthz``,
``/quality``) against an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.events import NodeFailure, Prediction
from repro.obs import (
    LINES_SEEN,
    LiveMonitor,
    Observability,
    ObsServer,
    QualityScoreboard,
    parse_prometheus,
)
from repro.obs.server import PROMETHEUS_CONTENT_TYPE


def fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


@pytest.fixture()
def obs():
    o = Observability(
        live=LiveMonitor(0.01, clock=lambda: 0.0),
        quality=QualityScoreboard())
    o.registry.counter(LINES_SEEN, "lines").inc(42)
    return o


class TestMetricsEndpoint:
    def test_scrape_parses_and_carries_content_type(self, obs):
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/metrics"))
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        snap = parse_prometheus(body)
        (entry,) = snap[LINES_SEEN]["series"]
        assert entry["value"] == 42

    def test_scrape_refreshes_live_gauges(self, obs):
        obs.live.observe_prediction(0.001)
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/metrics"))
        assert "aarohi_live_prediction_latency_seconds" in body
        assert "aarohi_deadline_ok 1" in body

    def test_ephemeral_ports_do_not_collide(self, obs):
        with ObsServer(obs) as a, ObsServer(obs) as b:
            assert a.port != b.port


class TestHealthz:
    def test_healthy_fleet_returns_200(self, obs):
        obs.live.observe_prediction(0.001)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/healthz"))
        assert status == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["deadline"]["ok"] is True

    def test_busted_deadline_returns_503(self, obs):
        for _ in range(100):
            obs.live.observe_prediction(0.5)  # way past the 10 ms budget
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["status"] == "failing"
        assert payload["deadline"]["ok"] is False

    def test_tripped_drift_returns_503(self, obs):
        obs.quality.drift.reference = 0.99
        obs.quality.drift.warmup = 0
        for _ in range(30):
            obs.quality.record_discard(900, 1000)
        assert obs.quality.drift.tripped
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/healthz"))
        assert excinfo.value.code == 503


class TestQualityEndpoint:
    def test_scoreboard_json(self, obs):
        obs.quality.add_prediction(Prediction(
            node="n1", chain_id="FC_1", flagged_at=100.0,
            prediction_time=0.0))
        obs.quality.add_failure(NodeFailure(node="n1", time=400.0))
        obs.quality.advance(500.0)
        with ObsServer(obs) as server:
            status, ctype, body = fetch(server.url("/quality"))
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["true_positives"] == 1
        assert payload["lead_times"] == [300.0]

    def test_disabled_scoreboard(self):
        obs = Observability()
        with ObsServer(obs) as server:
            _, _, body = fetch(server.url("/quality"))
        assert json.loads(body) == {"enabled": False}


class TestUnknownPath:
    def test_404(self, obs):
        with ObsServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/nope"))
        assert excinfo.value.code == 404


class TestMidRunScrape:
    def test_scrape_during_fleet_progress(self):
        """A scrape between two runs of the same fleet sees coherent,
        monotone counters (the live-dashboard contract)."""
        from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
        from repro.core.events import Severity
        from repro.templates import TemplateStore

        store = TemplateStore()
        store.add("alpha fault *", Severity.ERRONEOUS, token=301)
        store.add("beta warn *", Severity.UNKNOWN, token=302)
        chains = ChainSet([FailureChain("FC_x", (301, 302))])
        obs = Observability(live=LiveMonitor(0.01, clock=lambda: 0.0))
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, obs=obs)
        events = [
            LogEvent(float(i), "n0", "benign noise") for i in range(50)
        ]
        with ObsServer(obs) as server:
            fleet.run(events, timing="off")
            _, _, body = fetch(server.url("/metrics"))
            first = parse_prometheus(body)[LINES_SEEN]["series"][0]["value"]
            fleet.run(events, timing="off")
            _, _, body = fetch(server.url("/metrics"))
            second = parse_prometheus(body)[LINES_SEEN]["series"][0]["value"]
        assert (first, second) == (50, 100)
