"""Tests for the black-box flight recorder (``repro.obs.flight``)."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    TRIGGER_DEADLINE,
    TRIGGER_DRIFT,
    TRIGGER_QUARANTINE,
    read_capsule,
)


class TestRingBuffer:
    def test_note_stamps_monotone_seq_and_wall(self):
        rec = FlightRecorder(capacity=8, clock=lambda: 123.0)
        rec.note("a")
        rec.note("b", detail=1)
        events = rec.events()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["wall"] == 123.0 for e in events)

    def test_capacity_bounds_the_ring(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.note("tick", i=i)
        events = rec.events()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert rec.buffered == 4

    def test_none_fields_are_dropped(self):
        rec = FlightRecorder(capacity=4)
        rec.note("tick", keep=1, drop=None)
        (event,) = rec.events()
        assert "drop" not in event
        assert event["keep"] == 1

    def test_absorb_keeps_existing_wall_stamp(self):
        rec = FlightRecorder(capacity=4, clock=lambda: 999.0)
        rec.absorb({"ev": "prediction_fired", "node": "n1", "wall": 5.0})
        (event,) = rec.events()
        assert event["kind"] == "trace"
        assert event["wall"] == 5.0


class TestTrigger:
    def test_trigger_is_sticky_per_reason(self):
        rec = FlightRecorder(capacity=8)
        rec.note("before")
        first = rec.trigger(TRIGGER_DEADLINE, burn=2.0)
        again = rec.trigger(TRIGGER_DEADLINE, burn=3.0)
        other = rec.trigger(TRIGGER_DRIFT)
        assert first is not None
        assert again is None
        assert other is not None
        assert rec.capsules == 2

    def test_unknown_reason_rejected(self):
        rec = FlightRecorder(capacity=8)
        with pytest.raises(ValueError):
            rec.trigger("made_up_reason")

    def test_reset_trigger_rearms(self):
        rec = FlightRecorder(capacity=8)
        assert rec.trigger(TRIGGER_QUARANTINE, burn=1.5) is not None
        rec.reset_trigger(TRIGGER_QUARANTINE)
        assert rec.trigger(TRIGGER_QUARANTINE, burn=1.6) is not None

    def test_capsule_header_carries_reason_and_extras(self):
        rec = FlightRecorder(capacity=8, clock=lambda: 7.0)
        rec.note("tick")
        text = rec.trigger(TRIGGER_DEADLINE, burn=4.2)
        header = json.loads(text.splitlines()[0])
        assert header["kind"] == "capsule"
        assert header["reason"] == TRIGGER_DEADLINE
        assert header["burn"] == 4.2
        assert header["events"] == 1

    def test_capsule_events_precede_the_trigger(self):
        # The ring replays the run-up: every buffered event carries a
        # seq assigned before the capsule was cut.
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.note("tick", i=i)
        text = rec.trigger(TRIGGER_DRIFT)
        parsed = read_capsule(text)
        assert [e["i"] for e in parsed["events"]] == [0, 1, 2, 3, 4]
        seqs = [e["seq"] for e in parsed["events"]]
        assert seqs == sorted(seqs)


class TestCapsuleIO:
    def test_capsule_file_matches_served_text(self, tmp_path):
        rec = FlightRecorder(capacity=8, directory=tmp_path)
        rec.note("tick")
        snapshot = {"aarohi_lines_seen_total": {
            "type": "counter", "help": "",
            "series": [{"labels": {}, "value": 42}]}}
        text = rec.trigger(TRIGGER_QUARANTINE, snapshot=snapshot, burn=2.0)
        path = rec.last_capsule_path
        assert path is not None
        assert path.read_text(encoding="utf-8") == text
        assert rec.last_capsule_text == text
        assert TRIGGER_QUARANTINE in path.name

    def test_read_capsule_round_trips_path_text_and_lines(self, tmp_path):
        rec = FlightRecorder(capacity=8, directory=tmp_path)
        rec.note("tick", i=1)
        snapshot = {"aarohi_predictions_total": {
            "type": "counter", "help": "",
            "series": [{"labels": {}, "value": 3}]}}
        text = rec.trigger(TRIGGER_DEADLINE, snapshot=snapshot)
        for source in (text, text.splitlines(), rec.last_capsule_path):
            parsed = read_capsule(source)
            assert parsed["header"]["reason"] == TRIGGER_DEADLINE
            assert [e["i"] for e in parsed["events"]] == [1]
            assert parsed["snapshot"]["aarohi_predictions_total"][
                "series"][0]["value"] == 3

    def test_read_capsule_rejects_non_capsule_jsonl(self):
        with pytest.raises(ValueError):
            read_capsule('{"kind": "tick"}\n')

    def test_capsule_without_snapshot_parses(self):
        rec = FlightRecorder(capacity=8)
        text = rec.trigger(TRIGGER_DRIFT)
        parsed = read_capsule(text)
        assert parsed["snapshot"] is None


class TestFacadeTriggers:
    def test_quarantine_burn_capsules_exactly_once(self):
        from repro.obs import Observability
        from repro.logsim import IngestStats

        obs = Observability(flight=FlightRecorder(capacity=16))
        bad = IngestStats()
        bad.lines_read = 100
        bad.decoded = 80
        bad.quarantined = 20
        bad.quarantined_by_reason["garbled"] = 20
        obs.record_ingest(bad)
        fired = obs.check_flight()
        assert fired == ["quarantine_slo"]
        assert obs.check_flight() == []  # sticky: one capsule per anomaly
        assert obs.flight.capsules == 1
        parsed = read_capsule(obs.flight.last_capsule_text)
        assert parsed["header"]["reason"] == TRIGGER_QUARANTINE
        assert parsed["snapshot"] is not None

    def test_flush_shutdown_freezes_the_ring(self, tmp_path):
        from repro.obs import Observability, TRIGGER_SHUTDOWN

        obs = Observability(
            flight=FlightRecorder(capacity=16, directory=tmp_path))
        obs.flight.note("chunk", n=3)
        text = obs.flush_shutdown(signal="SIGTERM")
        assert text is not None
        parsed = read_capsule(text)
        assert parsed["header"]["reason"] == TRIGGER_SHUTDOWN
        assert parsed["header"]["signal"] == "SIGTERM"
        assert parsed["snapshot"] is not None
        assert any(e["kind"] == "chunk" for e in parsed["events"])
        # Written to the capsule directory like any anomaly capsule.
        assert obs.flight.last_capsule_path is not None
        assert obs.flight.last_capsule_path.exists()
        # Sticky: a double drain writes exactly one capsule.
        assert obs.flush_shutdown(signal="SIGTERM") is None
        assert obs.flight.capsules == 1

    def test_flush_shutdown_without_recorder_is_noop(self):
        from repro.obs import Observability

        assert Observability().flush_shutdown() is None

    def test_tracer_mirror_feeds_the_ring(self, tmp_path):
        import io

        from repro.obs import Observability, Tracer

        flight = FlightRecorder(capacity=16)
        tracer = Tracer(io.StringIO(), sample=1.0)
        obs = Observability(tracer=tracer, flight=flight)
        assert tracer.mirror is not None
        obs.tracer.emit("prediction_fired", "n7", t=1.0)
        kinds = [e["kind"] for e in flight.events()]
        assert "trace" in kinds
        (trace_event,) = [e for e in flight.events() if e["kind"] == "trace"]
        assert trace_event["node"] == "n7"
