"""Tests for Prometheus/JSON exposition and the inverse parser."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.exposition import (
    PrometheusParseError,
    histogram_series,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import Registry


def populated_registry() -> Registry:
    r = Registry()
    r.counter("aarohi_lines_seen_total", "lines offered").inc(1234)
    r.counter("aarohi_faults_total", "by kind", kind="novel").inc(3)
    r.counter("aarohi_faults_total", "by kind", kind="spurious").inc(2)
    r.gauge("aarohi_fleet_nodes", "alive").set(40)
    r.gauge("aarohi_rate", "fractional").set(0.12345)
    h = r.histogram("aarohi_latency_seconds", "latency", lo_exp=-6, hi_exp=2)
    for v in (0.01, 0.02, 0.5, 1.5, 300.0):
        h.observe(v)
    return r


class TestRoundTrip:
    def test_parse_inverts_render(self):
        snap = populated_registry().snapshot()
        assert parse_prometheus(render_prometheus(snap)) == snap

    def test_empty_snapshot(self):
        assert parse_prometheus(render_prometheus({})) == {}

    def test_label_escaping_survives(self):
        r = Registry()
        r.counter("c_total", "x", path='we"ird\\lab\nel').inc(1)
        snap = r.snapshot()
        assert parse_prometheus(render_prometheus(snap)) == snap


class TestLabelEscapingProperty:
    """Hypothesis property: label values survive render → parse for any
    text built from the characters the Prometheus format can carry —
    including the three escaped ones (``\\``, ``"``, newline) in any
    combination and position.  Line separators beyond ``\\n`` (\\r,
    U+2028, …) are excluded: the text format defines no escape for
    them."""

    label_values = st.text(
        alphabet=st.one_of(
            # Weight the troublesome characters heavily.
            st.sampled_from('\\"\n'),
            st.sampled_from('\\\\n\\"{}=, '),
            st.characters(
                blacklist_categories=("Cs", "Cc", "Zl", "Zp")),
        ),
        max_size=40,
    )

    @given(value=label_values)
    @settings(max_examples=200, deadline=None)
    def test_escape_unescape_identity(self, value):
        from repro.obs.exposition import _escape_label, _unescape_label

        assert _unescape_label(_escape_label(value)) == value

    @given(value=label_values)
    @settings(max_examples=100, deadline=None)
    def test_label_value_round_trips_through_text_format(self, value):
        r = Registry()
        r.counter("esc_total", "escaping", path=value).inc(1)
        snap = r.snapshot()
        assert parse_prometheus(render_prometheus(snap)) == snap

    def test_trailing_backslash_and_literal_backslash_n(self):
        # The regression that motivated the property: '\\' followed by
        # 'n' in the *source* value must not collapse into a newline,
        # and a trailing backslash must stay one backslash.
        for value in ("\\n", "ends with \\", "\\\\n", "\\\n", 'mix\\"\n\\'):
            r = Registry()
            r.counter("esc_total", "escaping", path=value).inc(1)
            snap = r.snapshot()
            assert parse_prometheus(render_prometheus(snap)) == snap


class TestRoundTripProperty:
    """Property check (seeded random, no external deps): for randomly
    populated registries — including the live plane's quantile-labeled
    gauges and the scoreboard's rolling series — ``parse ∘ render`` is
    the identity on snapshots and ``render`` is a fixed point."""

    def random_registry(self, rng) -> Registry:
        from repro.obs import LiveMonitor, QualityScoreboard
        from repro.core.events import NodeFailure, Prediction

        r = Registry()
        # Random plain families with random label sets and values.
        for i in range(rng.randint(0, 4)):
            labels = {
                f"l{j}": rng.choice(["a", "b", 'q"x', "multi\nline"])
                for j in range(rng.randint(0, 2))
            }
            kind = rng.choice(("counter", "gauge", "histogram"))
            if kind == "counter":
                r.counter(f"rand_c{i}_total", "r", **labels).inc(
                    rng.randint(0, 10**9))
            elif kind == "gauge":
                r.gauge(f"rand_g{i}", "r", **labels).set(
                    rng.choice([rng.random(), rng.uniform(-1e12, 1e12),
                                float(rng.randint(0, 99))]))
            else:
                h = r.histogram(f"rand_h{i}", "r", lo_exp=-8, hi_exp=8,
                                **labels)
                for _ in range(rng.randint(0, 50)):
                    h.observe(rng.expovariate(2.0))
        # The live plane: quantile-labeled latency gauges, deadline
        # verdict, EWMA rate, stream lag.
        live = LiveMonitor(
            rng.uniform(1e-4, 1e-1), clock=lambda: 1000.0)
        for _ in range(rng.randint(0, 200)):
            live.observe_prediction(rng.expovariate(1000.0))
        live.record_batch(
            n_events=rng.randint(1, 10_000), seconds=rng.uniform(0.1, 5.0),
            last_event_time=rng.uniform(0, 1000.0))
        live.publish(r, {"shard": str(rng.randint(0, 3))})
        # The scoreboard: rolling gauges + the lead-time histogram.
        board = QualityScoreboard()
        t = 0.0
        for _ in range(rng.randint(0, 10)):
            t += rng.uniform(1.0, 400.0)
            node = f"n{rng.randint(0, 3)}"
            board.add_prediction(Prediction(
                node=node, chain_id="FC", flagged_at=t,
                prediction_time=0.0))
            if rng.random() < 0.7:
                board.add_failure(NodeFailure(
                    node=node, time=t + rng.uniform(1.0, 2000.0)))
        board.record_discard(rng.randint(0, 1000), 1000)
        board.publish(r)
        return r

    @pytest.mark.parametrize("seed", range(20))
    def test_parse_render_identity(self, seed):
        import random

        snap = self.random_registry(random.Random(seed)).snapshot()
        text = render_prometheus(snap)
        parsed = parse_prometheus(text)
        assert parsed == snap
        # render is a fixed point: rendering the parsed snapshot gives
        # byte-identical text (floats survive via repr).
        assert render_prometheus(parsed) == text


class TestRenderPrometheus:
    def test_headers_and_samples(self):
        text = render_prometheus(populated_registry().snapshot())
        assert "# HELP aarohi_lines_seen_total lines offered" in text
        assert "# TYPE aarohi_lines_seen_total counter" in text
        assert "aarohi_lines_seen_total 1234" in text
        assert 'aarohi_faults_total{kind="novel"} 3' in text

    def test_histogram_buckets_cumulative(self):
        r = Registry()
        h = r.histogram("h", lo_exp=0, hi_exp=2)
        h.observe(0.7)  # bucket 0 (≤1)
        h.observe(1.5)  # bucket 1 (≤2)
        text = render_prometheus(r.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text
        assert "h_sum 2.2" in text

    def test_integer_valued_floats_render_as_ints(self):
        r = Registry()
        r.gauge("g").set(7.0)
        assert "g 7\n" in render_prometheus(r.snapshot())


class TestParseErrors:
    def test_garbage_line(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("# TYPE c counter\nc = what\n")

    def test_sample_without_type(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("mystery_total 3\n")

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\nh_count 1\n"
        )
        with pytest.raises(PrometheusParseError):
            parse_prometheus(text)


class TestRenderJson:
    def test_json_is_loadable_and_equal(self):
        snap = populated_registry().snapshot()
        assert json.loads(render_json(snap)) == snap


class TestHistogramSeries:
    def test_returns_series_of_histograms_only(self):
        snap = populated_registry().snapshot()
        series = histogram_series(snap, "aarohi_latency_seconds")
        assert len(series) == 1
        assert sum(series[0]["counts"]) == 5
        assert histogram_series(snap, "aarohi_fleet_nodes") == []
        assert histogram_series(snap, "absent") == []

    def test_overflow_lands_in_inf_bucket(self):
        snap = populated_registry().snapshot()
        entry = histogram_series(snap, "aarohi_latency_seconds")[0]
        assert entry["counts"][-1] == 1  # the 300 s observation
        bounds = [2.0 ** e for e in range(entry["lo_exp"], entry["hi_exp"])]
        assert bounds[-1] < 300.0
        assert math.inf not in bounds
