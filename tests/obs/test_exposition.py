"""Tests for Prometheus/JSON exposition and the inverse parser."""

import json
import math

import pytest

from repro.obs.exposition import (
    PrometheusParseError,
    histogram_series,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import Registry


def populated_registry() -> Registry:
    r = Registry()
    r.counter("aarohi_lines_seen_total", "lines offered").inc(1234)
    r.counter("aarohi_faults_total", "by kind", kind="novel").inc(3)
    r.counter("aarohi_faults_total", "by kind", kind="spurious").inc(2)
    r.gauge("aarohi_fleet_nodes", "alive").set(40)
    r.gauge("aarohi_rate", "fractional").set(0.12345)
    h = r.histogram("aarohi_latency_seconds", "latency", lo_exp=-6, hi_exp=2)
    for v in (0.01, 0.02, 0.5, 1.5, 300.0):
        h.observe(v)
    return r


class TestRoundTrip:
    def test_parse_inverts_render(self):
        snap = populated_registry().snapshot()
        assert parse_prometheus(render_prometheus(snap)) == snap

    def test_empty_snapshot(self):
        assert parse_prometheus(render_prometheus({})) == {}

    def test_label_escaping_survives(self):
        r = Registry()
        r.counter("c_total", "x", path='we"ird\\lab\nel').inc(1)
        snap = r.snapshot()
        assert parse_prometheus(render_prometheus(snap)) == snap


class TestRenderPrometheus:
    def test_headers_and_samples(self):
        text = render_prometheus(populated_registry().snapshot())
        assert "# HELP aarohi_lines_seen_total lines offered" in text
        assert "# TYPE aarohi_lines_seen_total counter" in text
        assert "aarohi_lines_seen_total 1234" in text
        assert 'aarohi_faults_total{kind="novel"} 3' in text

    def test_histogram_buckets_cumulative(self):
        r = Registry()
        h = r.histogram("h", lo_exp=0, hi_exp=2)
        h.observe(0.7)  # bucket 0 (≤1)
        h.observe(1.5)  # bucket 1 (≤2)
        text = render_prometheus(r.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text
        assert "h_sum 2.2" in text

    def test_integer_valued_floats_render_as_ints(self):
        r = Registry()
        r.gauge("g").set(7.0)
        assert "g 7\n" in render_prometheus(r.snapshot())


class TestParseErrors:
    def test_garbage_line(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("# TYPE c counter\nc = what\n")

    def test_sample_without_type(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("mystery_total 3\n")

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\nh_count 1\n"
        )
        with pytest.raises(PrometheusParseError):
            parse_prometheus(text)


class TestRenderJson:
    def test_json_is_loadable_and_equal(self):
        snap = populated_registry().snapshot()
        assert json.loads(render_json(snap)) == snap


class TestHistogramSeries:
    def test_returns_series_of_histograms_only(self):
        snap = populated_registry().snapshot()
        series = histogram_series(snap, "aarohi_latency_seconds")
        assert len(series) == 1
        assert sum(series[0]["counts"]) == 5
        assert histogram_series(snap, "aarohi_fleet_nodes") == []
        assert histogram_series(snap, "absent") == []

    def test_overflow_lands_in_inf_bucket(self):
        snap = populated_registry().snapshot()
        entry = histogram_series(snap, "aarohi_latency_seconds")[0]
        assert entry["counts"][-1] == 1  # the 300 s observation
        bounds = [2.0 ** e for e in range(entry["lo_exp"], entry["hi_exp"])]
        assert bounds[-1] < 300.0
        assert math.inf not in bounds
