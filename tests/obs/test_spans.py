"""Tests for stage-level span tracing (``repro.obs.spans``)."""

import pytest

from repro.obs import Registry, SpanClock, SpanTimer, shard_span_breakdown
from repro.obs.names import (
    SPAN_RUN_SECONDS,
    SPAN_RUNS,
    SPAN_RUNS_SAMPLED,
    SPAN_STAGE_LATENCY,
    SPAN_STAGE_SECONDS,
)
from repro.obs.spans import (
    SPAN_STAGES,
    STAGE_DECODE,
    STAGE_EMIT,
    STAGE_MATCH,
    STAGE_SCAN,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestSpanTimer:
    def test_laps_telescope_exactly(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        clock.advance(0.25)
        timer.lap(STAGE_DECODE, 100)
        clock.advance(0.5)
        timer.lap(STAGE_SCAN, 100)
        clock.advance(0.125)
        timer.lap(STAGE_MATCH, 40)
        assert timer.total == sum(timer.seconds.values())
        assert timer.seconds[STAGE_SCAN] == 0.5
        assert timer.records[STAGE_DECODE] == 100

    def test_repeated_laps_accumulate(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        for _ in range(3):
            clock.advance(0.1)
            timer.lap(STAGE_MATCH, 10)
        assert timer.seconds[STAGE_MATCH] == pytest.approx(0.3)
        assert timer.records[STAGE_MATCH] == 30

    def test_carve_is_zero_sum(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        clock.advance(1.0)
        timer.lap(STAGE_MATCH, 50)
        timer.carve(STAGE_MATCH, STAGE_EMIT, 0.25, 2)
        assert timer.seconds[STAGE_MATCH] == pytest.approx(0.75)
        assert timer.seconds[STAGE_EMIT] == pytest.approx(0.25)
        assert timer.total == pytest.approx(sum(timer.seconds.values()))
        assert timer.records[STAGE_EMIT] == 2

    def test_carve_before_enclosing_lap_still_telescopes(self):
        # The fleet carves emit time out mid-loop, before the match lap
        # closes — the transient negative cancels when it does.
        clock = FakeClock()
        timer = SpanTimer(clock)
        clock.advance(0.3)
        timer.carve(STAGE_MATCH, STAGE_EMIT, 0.1, 1)
        clock.advance(0.7)
        timer.lap(STAGE_MATCH, 10)
        assert timer.total == pytest.approx(sum(timer.seconds.values()))
        assert timer.seconds[STAGE_EMIT] == pytest.approx(0.1)


class TestSpanClockSampling:
    def test_sample_one_times_every_run(self):
        clock = SpanClock(1.0)
        timers = [clock.start_run() for _ in range(10)]
        assert all(t is not None for t in timers)
        assert clock.runs == 10
        assert clock.runs_sampled == 10

    def test_sample_zero_times_nothing(self):
        clock = SpanClock(0.0)
        assert all(clock.start_run() is None for _ in range(10))
        assert clock.runs == 10
        assert clock.runs_sampled == 0

    def test_fractional_sample_is_deterministic_and_proportional(self):
        clock = SpanClock(0.25)
        picks = [clock.start_run() is not None for _ in range(100)]
        # Accumulator starts full: run 1 samples, then every 4th run.
        assert picks[0] is True
        assert sum(picks) == 26

    def test_rejects_out_of_range_sample(self):
        with pytest.raises(ValueError):
            SpanClock(1.5)

    def test_unsampled_finish_is_a_noop(self):
        clock = SpanClock(0.0)
        clock.finish_run(None)
        assert clock.run_seconds == 0.0
        assert clock.stage_seconds == {}


class TestPublishAndBreakdown:
    def _clock_with_run(self, wall):
        span_clock = SpanClock(1.0, clock=wall)
        timer = span_clock.start_run()
        wall.advance(0.5)
        timer.lap(STAGE_DECODE, 200)
        wall.advance(1.5)
        timer.lap(STAGE_MATCH, 200)
        span_clock.finish_run(timer)
        return span_clock

    def test_publish_round_trips_through_breakdown(self):
        wall = FakeClock()
        span_clock = self._clock_with_run(wall)
        registry = Registry()
        span_clock.publish(registry, {"shard": "3"})
        breakdown = shard_span_breakdown(registry.snapshot())
        assert set(breakdown) == {"3"}
        shard = breakdown["3"]
        assert shard["runs"] == 1
        assert shard["runs_sampled"] == 1
        assert shard["stages"][STAGE_DECODE]["records"] == 200
        stage_sum = sum(s["seconds"] for s in shard["stages"].values())
        assert stage_sum == pytest.approx(shard["run_seconds"])

    def test_unlabeled_series_land_under_dash(self):
        wall = FakeClock()
        span_clock = self._clock_with_run(wall)
        registry = Registry()
        span_clock.publish(registry)
        breakdown = shard_span_breakdown(registry.snapshot())
        assert set(breakdown) == {"-"}

    def test_publish_is_set_total_idempotent(self):
        # Cumulative-slot discipline: publishing twice must not double.
        wall = FakeClock()
        span_clock = self._clock_with_run(wall)
        registry = Registry()
        span_clock.publish(registry)
        span_clock.publish(registry)
        snap = registry.snapshot()
        (runs,) = snap[SPAN_RUNS]["series"]
        assert runs["value"] == 1
        (seconds,) = snap[SPAN_RUN_SECONDS]["series"]
        assert seconds["value"] == pytest.approx(2.0)

    def test_latency_quantiles_published_per_stage(self):
        wall = FakeClock()
        span_clock = self._clock_with_run(wall)
        registry = Registry()
        span_clock.publish(registry)
        snap = registry.snapshot()
        labels = [
            entry["labels"] for entry in snap[SPAN_STAGE_LATENCY]["series"]]
        stages = {lbl["stage"] for lbl in labels}
        assert stages == {STAGE_DECODE, STAGE_MATCH}
        assert {lbl["quantile"] for lbl in labels} == {"0.5", "0.9", "0.99"}

    def test_report_orders_stages_pipeline_first(self):
        wall = FakeClock()
        span_clock = self._clock_with_run(wall)
        report = span_clock.report()
        stages = [entry["stage"] for entry in report["stages"]]
        assert stages == [s for s in SPAN_STAGES if s in stages]
        decode = report["stages"][0]
        assert decode["seconds_per_record"] == pytest.approx(0.5 / 200)

    def test_merged_multi_shard_breakdown_keeps_shards_distinct(self):
        registry = Registry()
        for shard in ("0", "1"):
            wall = FakeClock()
            self._clock_with_run(wall).publish(registry, {"shard": shard})
        breakdown = shard_span_breakdown(registry.snapshot())
        assert set(breakdown) == {"0", "1"}
        for shard in breakdown.values():
            stage_sum = sum(s["seconds"] for s in shard["stages"].values())
            assert stage_sum == pytest.approx(shard["run_seconds"])


class TestFleetIntegration:
    def test_serial_fleet_attributes_stages(self):
        pytest.importorskip("numpy")
        from repro.core import PredictorFleet
        from repro.logsim import ClusterLogGenerator, HPC3
        from repro.obs import Observability

        gen = ClusterLogGenerator(HPC3, seed=11)
        obs = Observability(spans=SpanClock(1.0))
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout, obs=obs)
        window = gen.generate_window(
            duration=600.0, n_nodes=6, n_failures=2, n_spurious=1)
        fleet.run(window.events)
        spans = obs.spans
        assert spans.runs == 1
        assert spans.runs_sampled == 1
        assert sum(spans.stage_seconds.values()) == pytest.approx(
            spans.run_seconds)
        assert spans.stage_records[STAGE_DECODE] == len(window.events)

    def test_unsampled_runs_record_nothing(self):
        pytest.importorskip("numpy")
        from repro.core import PredictorFleet
        from repro.logsim import ClusterLogGenerator, HPC3
        from repro.obs import Observability

        gen = ClusterLogGenerator(HPC3, seed=11)
        obs = Observability(spans=SpanClock(0.0))
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout, obs=obs)
        window = gen.generate_window(
            duration=600.0, n_nodes=6, n_failures=1, n_spurious=0)
        fleet.run(window.events)
        assert obs.spans.runs == 1
        assert obs.spans.runs_sampled == 0
        assert obs.registry.snapshot().get(SPAN_STAGE_SECONDS) is None
        (sampled,) = obs.registry.snapshot()[SPAN_RUNS_SAMPLED]["series"]
        assert sampled["value"] == 0
