"""Tests for the live ops plane: P² quantiles, EWMA rate, stream lag,
and the deadline/SLO monitor (Fig. 14 / Table VI feasibility check)."""

import random

import pytest

from repro.obs import (
    DEADLINE_OK,
    DeadlineMonitor,
    EwmaRate,
    LIVE_LATENCY_QUANTILE,
    LiveMonitor,
    Observability,
    P2Quantile,
    QuantileSketch,
    Registry,
    StreamLag,
    inter_arrival_budget,
    quantile_from_histogram,
)
from repro.obs.live import live_rows


def exact_quantile(samples, q):
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[rank]


class TestP2Quantile:
    def test_exact_until_five_samples(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.observe(v)
        assert est.value() == 3.0  # exact median of {1, 3, 5}

    def test_empty_is_zero(self):
        assert P2Quantile(0.9).value() == 0.0

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("seed", [7, 23, 99])
    def test_tracks_uniform_distribution(self, q, seed):
        rng = random.Random(seed)
        est = P2Quantile(q)
        samples = [rng.random() for _ in range(5000)]
        for v in samples:
            est.observe(v)
        # P² on U(0,1): the estimate sits near the true quantile q.
        assert abs(est.value() - q) < 0.05

    @pytest.mark.parametrize("seed", [3, 41])
    def test_tracks_skewed_latency_distribution(self, seed):
        # Latency-shaped data: lognormal-ish with a heavy right tail,
        # the regime the deadline monitor actually watches.
        rng = random.Random(seed)
        samples = [rng.expovariate(1000.0) for _ in range(8000)]
        est = P2Quantile(0.9)
        for v in samples:
            est.observe(v)
        truth = exact_quantile(samples, 0.9)
        assert truth > 0
        assert abs(est.value() - truth) / truth < 0.15

    def test_monotone_across_quantiles(self):
        rng = random.Random(11)
        sketch = QuantileSketch((0.5, 0.9, 0.99))
        for _ in range(3000):
            sketch.observe(rng.gauss(10.0, 2.0))
        qs = sketch.quantiles()
        assert qs[0.5] <= qs[0.9] <= qs[0.99]
        assert sketch.count == 3000


class TestEwmaRate:
    def test_first_update_primes(self):
        rate = EwmaRate(halflife=30.0)
        assert rate.update(300, 1.0) == 300.0

    def test_decays_toward_new_rate(self):
        rate = EwmaRate(halflife=30.0)
        rate.update(1000, 1.0)
        # One halflife of wall time at 500 ev/s: halfway there.
        assert rate.update(500 * 30, 30.0) == pytest.approx(750.0)

    def test_zero_duration_is_ignored(self):
        rate = EwmaRate()
        rate.update(100, 1.0)
        assert rate.update(999, 0.0) == 100.0

    def test_rejects_bad_halflife(self):
        with pytest.raises(ValueError):
            EwmaRate(halflife=0.0)


class TestStreamLag:
    def test_anchors_on_first_update(self):
        lag = StreamLag()
        assert lag.update(event_time=100.0, wall=5000.0) == 0.0

    def test_reports_drift_past_anchor(self):
        lag = StreamLag()
        lag.update(100.0, 5000.0)
        # 10 s of stream consumed in 12 s of wall time: 2 s behind.
        assert lag.update(110.0, 5012.0) == pytest.approx(2.0)
        # Catching back up is visible too.
        assert lag.update(120.0, 5020.0) == pytest.approx(0.0)


class TestInterArrivalBudget:
    def test_hpc1_budget_matches_table_vi(self):
        from repro.logsim import HPC1

        budget = inter_arrival_budget(HPC1)
        assert budget == pytest.approx(
            1.0 / (HPC1.benign_rate_hz * HPC1.n_nodes))
        # Table VI scale: single-digit milliseconds at the aggregator.
        assert 0.001 < budget < 0.1

    def test_raw_knobs(self):
        assert inter_arrival_budget(rate_hz=10.0, n_nodes=10) == 0.01

    def test_requires_rate_and_nodes(self):
        with pytest.raises(ValueError):
            inter_arrival_budget()


class TestDeadlineMonitor:
    def test_pass_when_under_budget(self):
        mon = DeadlineMonitor(0.01, quantile=0.99, slo_fraction=0.01)
        for _ in range(200):
            mon.observe(0.001)
        verdict = mon.verdict()
        assert verdict.ok
        assert verdict.latency <= verdict.budget
        assert verdict.over_budget == 0
        assert verdict.burn_rate == 0.0

    def test_fail_when_quantile_over_budget(self):
        mon = DeadlineMonitor(0.01)
        for _ in range(200):
            mon.observe(0.05)
        verdict = mon.verdict()
        assert not verdict.ok
        assert verdict.over_budget == 200

    def test_burn_rate_fails_even_with_good_quantile(self):
        # 5% of predictions over budget burns a 1% SLO at 5×, even
        # though p50 stays comfortably inside the budget.
        mon = DeadlineMonitor(0.01, quantile=0.5, slo_fraction=0.01)
        for i in range(200):
            mon.observe(0.05 if i % 20 == 0 else 0.001)
        verdict = mon.verdict()
        assert verdict.burn_rate > 1.0
        assert not verdict.ok

    def test_as_dict_round_trips_fields(self):
        mon = DeadlineMonitor(0.01)
        mon.observe(0.001)
        d = mon.verdict().as_dict()
        assert d["ok"] is True
        assert d["budget_seconds"] == 0.01
        assert d["observed"] == 1


class TestDeadlineWithRealFleet:
    """The acceptance pair: a real fleet clears the Table VI budget;
    an inflated clock (slow hardware stand-in) fails it."""

    @pytest.fixture(scope="class")
    def gen(self):
        from repro.logsim import ClusterLogGenerator, HPC1

        return ClusterLogGenerator(HPC1, seed=17)

    @pytest.fixture(scope="class")
    def window(self, gen):
        return gen.generate_window(
            duration=1800.0, n_nodes=16, n_failures=6, n_spurious=0)

    def run_fleet(self, gen, window, clock=None):
        from repro.core import PredictorFleet

        budget = inter_arrival_budget(gen.config)
        live = LiveMonitor(budget)
        obs = Observability(live=live)
        kwargs = {} if clock is None else {"clock": clock}
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout,
            obs=obs, **kwargs)
        report = fleet.run(window.events, timing="sampled")
        assert report.predictions, "window produced no predictions"
        return live.verdict(), len(report.predictions)

    def test_real_clock_passes_budget(self, gen, window):
        verdict, n = self.run_fleet(gen, window)
        assert verdict.observed == n
        # Real per-prediction cost is microseconds; the HPC1 budget is
        # ~6 ms (Fig. 14's feasibility gap).
        assert verdict.ok, verdict.as_dict()

    def test_inflated_clock_fails_budget(self, gen, window):
        budget = inter_arrival_budget(gen.config)
        ticks = iter(range(10**9))

        def slow_clock():
            # Every clock read advances 2× the whole budget, so any
            # timed chain check alone busts the deadline.
            return next(ticks) * 2.0 * budget

        verdict, n = self.run_fleet(gen, window, clock=slow_clock)
        assert verdict.observed == n
        assert not verdict.ok, verdict.as_dict()
        assert verdict.over_budget == n


class TestQuantileFromHistogram:
    def test_empty_is_zero(self):
        assert quantile_from_histogram([0, 0, 0], -2, 0.99) == 0.0

    def test_returns_bucket_upper_bound(self):
        # 10 observations in bucket 0 (≤ 2^-3), 1 in bucket 2 (≤ 2^-1).
        counts = [10, 0, 1]
        assert quantile_from_histogram(counts, -3, 0.5) == 2.0 ** -3
        assert quantile_from_histogram(counts, -3, 0.99) == 2.0 ** -2

    def test_overflow_bucket_capped_at_finite_edge(self):
        counts = [0, 0, 5]  # all in +Inf overflow
        assert quantile_from_histogram(counts, -3, 0.99) == 2.0 ** -2


class TestEvaluateSnapshot:
    def make_shard(self, registry, shard, latencies):
        from repro.obs import PREDICTION_SECONDS

        hist = registry.histogram(
            PREDICTION_SECONDS, "latency", lo_exp=-20, hi_exp=4, shard=shard)
        for v in latencies:
            hist.observe(v)

    def test_multi_shard_merge(self):
        # Two worker shards: one fast, one with latencies past budget.
        registry = Registry()
        self.make_shard(registry, "0", [1e-5] * 50)
        self.make_shard(registry, "1", [1e-5] * 45 + [0.5] * 5)
        mon = DeadlineMonitor(0.01, quantile=0.99, slo_fraction=0.01)
        verdict = mon.evaluate_snapshot(registry.snapshot())
        assert verdict.observed == 100
        assert verdict.over_budget == 5
        assert not verdict.ok

    def test_all_fast_shards_pass(self):
        registry = Registry()
        self.make_shard(registry, "0", [1e-5] * 50)
        self.make_shard(registry, "1", [2e-5] * 50)
        mon = DeadlineMonitor(0.01)
        verdict = mon.evaluate_snapshot(registry.snapshot())
        assert verdict.observed == 100
        assert verdict.ok

    def test_missing_histogram_is_empty_verdict(self):
        mon = DeadlineMonitor(0.01)
        verdict = mon.evaluate_snapshot({})
        assert verdict.observed == 0
        assert verdict.ok  # vacuous: nothing observed, nothing burned


class TestLiveMonitorPublish:
    def test_gauges_carry_quantile_labels(self):
        live = LiveMonitor(0.01, clock=lambda: 1000.0)
        for _ in range(10):
            live.observe_prediction(0.001)
        live.record_batch(n_events=600, seconds=2.0, last_event_time=50.0)
        registry = Registry()
        live.publish(registry)
        snap = registry.snapshot()
        labels = {
            entry["labels"]["quantile"]
            for entry in snap[LIVE_LATENCY_QUANTILE]["series"]
        }
        assert labels == {"0.5", "0.9", "0.99"}
        (ok,) = snap[DEADLINE_OK]["series"]
        assert ok["value"] == 1.0

    def test_no_budget_publishes_quantiles_only(self):
        live = LiveMonitor()  # no deadline configured
        live.observe_prediction(0.002)
        assert live.verdict() is None
        registry = Registry()
        live.publish(registry)
        snap = registry.snapshot()
        assert LIVE_LATENCY_QUANTILE in snap
        assert DEADLINE_OK not in snap

    def test_live_rows_render_verdict(self):
        live = LiveMonitor(0.01, clock=lambda: 0.0)
        live.observe_prediction(0.001)
        live.record_batch(n_events=100, seconds=1.0, last_event_time=None)
        registry = Registry()
        live.publish(registry)
        rows = dict(live_rows(registry.snapshot()))
        assert rows["deadline verdict"] == "PASS"
        assert "message rate" in rows
