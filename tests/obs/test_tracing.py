"""Tests for the prediction-lifecycle tracer and trace analytics."""

import io

import pytest

from repro.core.events import NodeFailure
from repro.obs.tracing import (
    CHAIN_STARTED,
    EVENT_KINDS,
    PREDICTION_FIRED,
    TOKEN_ADVANCED,
    Tracer,
    lifecycle_counts,
    read_trace,
    realized_lead_times,
)


class TestEmitAndRead:
    def test_round_trip(self):
        sink = io.StringIO()
        tracer = Tracer(sink, clock=lambda: 99.0)
        tracer.emit(CHAIN_STARTED, "node-1", chain="FC_x", token=7, t=3.5)
        tracer.emit(PREDICTION_FIRED, "node-1", chain="FC_x", t=9.0)
        tracer.close()
        records = read_trace(io.StringIO(sink.getvalue()))
        assert [r["ev"] for r in records] == [CHAIN_STARTED, PREDICTION_FIRED]
        assert records[0]["chain"] == "FC_x"
        assert records[0]["wall"] == 99.0
        assert tracer.emitted == 2

    def test_none_fields_dropped(self):
        sink = io.StringIO()
        tracer = Tracer(sink, clock=lambda: 0.0)
        tracer.emit(TOKEN_ADVANCED, "n", chain=None, token=5, t=1.0)
        (record,) = read_trace(io.StringIO(sink.getvalue()))
        assert "chain" not in record
        assert record["token"] == 5

    def test_unknown_event_kind_rejected_on_read(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO('{"ev": "mystery", "node": "n"}\n'))

    def test_path_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(str(path), clock=lambda: 0.0) as tracer:
            tracer.emit(CHAIN_STARTED, "n", chain="FC", t=0.0)
        records = read_trace(str(path))
        assert len(records) == 1


class TestSampling:
    def test_sample_one_traces_everything(self):
        tracer = Tracer(io.StringIO(), sample=1.0)
        assert all(tracer.sample_chain() for _ in range(20))

    def test_sample_zero_traces_nothing(self):
        tracer = Tracer(io.StringIO(), sample=0.0)
        # The accumulator starts full, so even the first activation needs
        # a nonzero rate to fire.
        assert not any(tracer.sample_chain() for _ in range(20))

    def test_fractional_rate_is_deterministic_and_proportional(self):
        tracer = Tracer(io.StringIO(), sample=0.25)
        decisions = [tracer.sample_chain() for _ in range(100)]
        # The accumulator starts full: the first activation fires, then
        # every 4th after it — 26 of 100 at rate 0.25.
        assert decisions[0] is True
        assert sum(decisions) == 26
        again = Tracer(io.StringIO(), sample=0.25)
        assert [again.sample_chain() for _ in range(100)] == decisions

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(io.StringIO(), sample=1.5)


class TestRealizedLeadTimes:
    def make_records(self):
        return [
            {"ev": CHAIN_STARTED, "node": "a", "chain": "FC", "t": 0.0},
            {"ev": PREDICTION_FIRED, "node": "a", "chain": "FC", "t": 10.0},
            {"ev": PREDICTION_FIRED, "node": "b", "chain": "FC", "t": 20.0},
        ]

    def test_fired_records_gain_lead(self):
        failures = [NodeFailure(node="a", time=130.0, chain_id="FC")]
        annotated = realized_lead_times(self.make_records(), failures)
        fired = [r for r in annotated if r["ev"] == PREDICTION_FIRED]
        assert fired[0]["lead"] == pytest.approx(120.0)
        assert fired[1]["lead"] is None  # node b never failed
        # Non-fired records pass through unannotated.
        assert "lead" not in annotated[0]

    def test_horizon_limits_pairing(self):
        failures = [NodeFailure(node="a", time=10_000.0, chain_id="FC")]
        annotated = realized_lead_times(
            self.make_records(), failures, horizon=100.0)
        fired = [r for r in annotated if r["ev"] == PREDICTION_FIRED]
        assert fired[0]["lead"] is None

    def test_input_not_mutated(self):
        records = self.make_records()
        realized_lead_times(
            records, [NodeFailure(node="a", time=130.0, chain_id="FC")])
        assert "lead" not in records[1]

    def test_duplicate_flags_credit_earliest_only(self):
        records = [
            {"ev": PREDICTION_FIRED, "node": "a", "t": 10.0},
            {"ev": PREDICTION_FIRED, "node": "a", "t": 40.0},
        ]
        failures = [NodeFailure(node="a", time=100.0, chain_id="FC")]
        fired = realized_lead_times(records, failures)
        assert fired[0]["lead"] == pytest.approx(90.0)
        assert fired[1]["lead"] is None
        assert fired[1].get("duplicate") is True
        assert "duplicate" not in fired[0]

    def test_each_failure_credited_once_across_two_failures(self):
        records = [
            {"ev": PREDICTION_FIRED, "node": "a", "t": 10.0},
            {"ev": PREDICTION_FIRED, "node": "a", "t": 60.0},
        ]
        failures = [
            NodeFailure(node="a", time=50.0, chain_id="FC"),
            NodeFailure(node="a", time=100.0, chain_id="FC"),
        ]
        fired = realized_lead_times(records, failures)
        # Earliest flag claims the earliest failure; the second flag
        # moves on to the next one rather than double-crediting.
        assert fired[0]["lead"] == pytest.approx(40.0)
        assert fired[1]["lead"] == pytest.approx(40.0)
        assert not any("duplicate" in r for r in fired)


class TestRealizedLeadsDifferential:
    """Satellite acceptance: lead times recovered from a real fleet's
    trace equal the offline pair_predictions leads, flag for flag."""

    def test_trace_leads_match_offline_pairing(self):
        from repro.core import PredictorFleet
        from repro.core.leadtime import pair_predictions
        from repro.logsim import ClusterLogGenerator, HPC3
        from repro.obs import Observability

        gen = ClusterLogGenerator(HPC3, seed=43)
        window = gen.generate_window(
            duration=1800.0, n_nodes=12, n_failures=5, n_spurious=2)
        sink = io.StringIO()
        obs = Observability(tracer=Tracer(sink, sample=0.0, clock=lambda: 0.0))
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout, obs=obs)
        report = fleet.run(window.events, timing="off")
        assert report.predictions

        records = read_trace(io.StringIO(sink.getvalue()))
        fired = [r for r in records if r["ev"] == PREDICTION_FIRED]
        # sample=0.0 still emits every prediction_fired record.
        assert len(fired) == len(report.predictions)

        annotated = realized_lead_times(
            records, window.failures, horizon=1800.0)
        trace_leads = sorted(
            r["lead"] for r in annotated
            if r["ev"] == PREDICTION_FIRED and r["lead"] is not None)
        offline = pair_predictions(
            report.predictions, window.failures, horizon=1800.0)
        offline_leads = sorted(rec.lead_time for rec in offline.matched)
        assert trace_leads == pytest.approx(offline_leads)
        # Unrealized flags (trace-side) == offline FPs + duplicates.
        unrealized = sum(
            1 for r in annotated
            if r["ev"] == PREDICTION_FIRED and r["lead"] is None)
        assert unrealized == len(report.predictions) - len(offline.matched)


class TestLifecycleCounts:
    def test_counts_every_kind(self):
        counts = lifecycle_counts([
            {"ev": CHAIN_STARTED}, {"ev": CHAIN_STARTED},
            {"ev": PREDICTION_FIRED},
        ])
        assert counts[CHAIN_STARTED] == 2
        assert counts[PREDICTION_FIRED] == 1
        assert set(counts) == set(EVENT_KINDS)
