"""Alert rules: parsing, linting, TOML round-trips, state machine."""

import pytest

from repro.obs import (
    DEFAULT_RULES,
    AlertRule,
    HistoryRing,
    RuleEngine,
    default_ruleset,
    load_rules,
    rules_to_toml,
    validate_rules,
)
from repro.obs.names import SLO_BURN
from repro.obs.rules import (
    _mini_toml,
    _parse_toml_rules,
    load_raw_rules,
    validate_rule,
)


def burn_snapshot(burn):
    return {SLO_BURN: {
        "type": "gauge", "help": "t",
        "series": [{"labels": {}, "value": float(burn)}],
    }}


def burn_rule(**overrides):
    raw = {
        "id": "test-burn", "series": SLO_BURN, "expr": "max_over_time",
        "op": ">", "threshold": 1.0, "window": 5.0, "for": 5.0,
        "severity": "page",
    }
    raw.update(overrides)
    return raw


class TestAlertRule:
    def test_from_dict_defaults(self):
        rule = AlertRule.from_dict({
            "id": "r", "series": SLO_BURN, "expr": "latest"})
        assert rule.op == ">"
        assert rule.threshold == 0.0
        assert rule.window is None
        assert rule.hold == 0.0  # the file's "for" key
        assert rule.severity == "warn"
        assert rule.labels == {}

    def test_for_key_becomes_hold(self):
        rule = AlertRule.from_dict(burn_rule(**{"for": 30}))
        assert rule.hold == 30.0
        assert rule.as_dict()["for"] == 30.0

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(ValueError, match="unknown series"):
            AlertRule.from_dict(burn_rule(series="aarohi_nope_total"))

    def test_evaluate_against_ring(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(burn_snapshot(2.5), t=0.0)
        rule = AlertRule.from_dict(burn_rule())
        value, breached = rule.evaluate(ring)
        assert (value, breached) == (2.5, True)

    def test_absent_expr(self):
        rule = AlertRule.from_dict({
            "id": "r", "series": SLO_BURN, "expr": "absent"})
        empty = HistoryRing()
        assert rule.evaluate(empty) == (1.0, True)
        ring = HistoryRing(interval=0.0)
        ring.capture(burn_snapshot(0.0), t=0.0)
        assert rule.evaluate(ring) == (0.0, False)


class TestValidation:
    @pytest.mark.parametrize("override,fragment", [
        ({"id": None}, "missing rule id"),
        ({"series": None}, "missing series"),
        ({"series": "aarohi_not_a_series"}, "unknown series"),
        ({"expr": "stddev"}, "malformed expr"),
        ({"op": "~"}, "malformed op"),
        ({"threshold": "high"}, "threshold must be a number"),
        ({"window": -1}, "window must be positive"),
        ({"for": -1}, "for must be >= 0"),
        ({"severity": "critical"}, "unknown severity"),
        ({"labels": {"shard": 3}}, "labels must be a table"),
        ({"when": "always"}, "unknown key 'when'"),
    ])
    def test_single_rule_problems(self, override, fragment):
        problems = validate_rule(burn_rule(**override))
        assert any(fragment in p for p in problems), problems

    def test_clean_rule_has_no_problems(self):
        assert validate_rule(burn_rule()) == []

    def test_duplicate_ids(self):
        problems = validate_rules([burn_rule(), burn_rule()])
        assert any("duplicate rule id" in p for p in problems)

    def test_empty_ruleset(self):
        assert validate_rules([]) == ["ruleset is empty"]

    def test_default_rules_lint_clean(self):
        assert validate_rules(DEFAULT_RULES) == []
        assert len(default_ruleset()) == 4

    def test_daemon_ruleset_extends_default(self):
        from repro.obs.rules import DAEMON_RULES, daemon_ruleset

        assert validate_rules(DEFAULT_RULES + DAEMON_RULES) == []
        rules = daemon_ruleset()
        ids = [r.id for r in rules]
        # Layered, not replaced: the batch matrix still evaluates.
        for rule in default_ruleset():
            assert rule.id in ids
        assert "shard-down" in ids
        shard_down = next(r for r in rules if r.id == "shard-down")
        assert shard_down.severity == "page"

    def test_load_rules_raises_on_problems(self):
        with pytest.raises(ValueError, match="invalid ruleset"):
            load_rules([burn_rule(expr="stddev")])


class TestToml:
    def test_default_rules_round_trip(self):
        text = rules_to_toml(DEFAULT_RULES)
        parsed = _parse_toml_rules(text)
        assert [AlertRule.from_dict(r) for r in parsed] == default_ruleset()

    def test_mini_toml_agrees_with_tomllib(self):
        # The py<3.11 fallback parser must read what we write the same
        # way tomllib does.
        text = rules_to_toml(DEFAULT_RULES)
        import tomllib
        assert _mini_toml(text) == tomllib.loads(text)

    def test_mini_toml_labels_table(self):
        text = (
            '[[rule]]\nid = "r"\nseries = "x"\nexpr = "latest"\n'
            "threshold = 2\nenabled = true\n\n"
            '[rule.labels]\nshard = "0"\n'
        )
        data = _mini_toml(text)
        assert data["rule"] == [{
            "id": "r", "series": "x", "expr": "latest",
            "threshold": 2, "enabled": True, "labels": {"shard": "0"},
        }]

    @pytest.mark.parametrize("text,fragment", [
        ("id = 1\n", "outside any"),
        ("[[rule]]\nid ~ 1\n", "expected key = value"),
        ("[[rule]]\nid = [1]\n", "unsupported value"),
        ("[weird.deep.table]\n", "unsupported table"),
    ])
    def test_mini_toml_rejects(self, text, fragment):
        with pytest.raises(ValueError, match=fragment):
            _mini_toml(text)

    def test_load_raw_rules_sources(self, tmp_path):
        text = rules_to_toml(DEFAULT_RULES)
        path = tmp_path / "rules.toml"
        path.write_text(text, encoding="utf-8")
        expected = [dict(r) for r in DEFAULT_RULES]
        assert load_raw_rules("default") == expected
        assert load_raw_rules(list(DEFAULT_RULES)) == expected
        for source in (text, path, str(path)):
            assert [r["id"] for r in load_raw_rules(source)] == [
                r["id"] for r in expected]
        with pytest.raises(TypeError):
            load_raw_rules(42)


class FakeClockRing:
    """A real ring driven by explicit capture times."""

    def __init__(self):
        self.ring = HistoryRing(interval=0.0)

    def burn(self, t, value):
        assert self.ring.capture(burn_snapshot(value), t=float(t))
        return self.ring


class TestStateMachine:
    def engine(self, hold=5.0):
        return RuleEngine([AlertRule.from_dict(burn_rule(**{"for": hold}))])

    def test_full_lifecycle(self):
        clock = FakeClockRing()
        engine = self.engine()
        state = engine.states["test-burn"]

        engine.evaluate(clock.burn(0, 0.5), now=0.0)
        assert state.state == "inactive"

        # Breach → pending; the hold hasn't elapsed yet.
        out = engine.evaluate(clock.burn(10, 2.0), now=10.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("inactive", "pending")]
        assert state.pending_since == 10.0

        engine.evaluate(clock.burn(12, 2.0), now=12.0)
        assert state.state == "pending"

        # Held past ``for:`` → firing.
        out = engine.evaluate(clock.burn(16, 2.0), now=16.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("pending", "firing")]
        assert engine.firing()[0].id == "test-burn"

        # Clear (the 5 s window slides past the burn) → resolved.
        out = engine.evaluate(clock.burn(30, 0.5), now=30.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("firing", "resolved")]
        assert engine.firing() == []

        # Re-breach from resolved → pending again.
        out = engine.evaluate(clock.burn(40, 3.0), now=40.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("resolved", "pending")]

    def test_pending_clears_to_inactive(self):
        clock = FakeClockRing()
        engine = self.engine()
        engine.evaluate(clock.burn(0, 2.0), now=0.0)
        assert engine.states["test-burn"].state == "pending"
        out = engine.evaluate(clock.burn(10, 0.5), now=10.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("pending", "inactive")]

    def test_zero_hold_fires_in_one_pass(self):
        clock = FakeClockRing()
        engine = self.engine(hold=0.0)
        out = engine.evaluate(clock.burn(0, 2.0), now=0.0)
        assert [(t["from"], t["to"]) for t in out] == [
            ("inactive", "pending"), ("pending", "firing")]

    def test_report_shape(self):
        clock = FakeClockRing()
        engine = self.engine(hold=0.0)
        engine.evaluate(clock.burn(0, 2.0), now=0.0)
        report = engine.report()
        assert report["evaluations"] == 1
        assert report["last_eval"] == 0.0
        assert report["firing"] == ["test-burn"]
        (row,) = report["rules"]
        assert row["id"] == "test-burn"
        assert row["state"] == "firing"
        assert row["value"] == 2.0
        assert row["firing_since"] == 0.0

    def test_engine_rejects_duplicate_ids(self):
        rule = AlertRule.from_dict(burn_rule())
        with pytest.raises(ValueError, match="duplicate"):
            RuleEngine([rule, rule])

    def test_engine_loads_default_by_name(self):
        engine = RuleEngine("default")
        assert sorted(engine.states) == [
            "deadline-burn", "discard-drift", "prediction-absence",
            "quarantine-burn"]
