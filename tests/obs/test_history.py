"""HistoryRing: bounded delta-compressed time series + query kit.

The load-bearing property (ISSUE 8 satellite): capture → evict → query
round-trips **exactly** against a naive list-of-snapshots oracle that
never deletes anything, under hypothesis-generated cadences, ring
sizes, and counter patterns including resets.  All generated values are
integers, so float addition is associativity-free and "exactly" means
``==``, not approx.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    HistoryRing,
    group_history_records,
    parse_history_ndjson,
)

COUNTER = "aarohi_test_events_total"
GAUGE = "aarohi_test_level"
HIST = "aarohi_test_latency_seconds"


def counter_snapshot(value, *, shard=None, gauge=None):
    labels = {} if shard is None else {"shard": shard}
    snap = {
        COUNTER: {
            "type": "counter", "help": "t",
            "series": [{"labels": labels, "value": float(value)}],
        },
    }
    if gauge is not None:
        snap[GAUGE] = {
            "type": "gauge", "help": "t",
            "series": [{"labels": {}, "value": float(gauge)}],
        }
    return snap


class TestCapture:
    def test_interval_throttles(self):
        ring = HistoryRing(interval=10.0)
        assert ring.capture(counter_snapshot(1), t=0.0)
        assert not ring.capture(counter_snapshot(2), t=5.0)
        assert ring.capture(counter_snapshot(3), t=10.0)
        assert len(ring) == 2

    def test_force_overrides_throttle(self):
        ring = HistoryRing(interval=10.0)
        ring.capture(counter_snapshot(1), t=0.0)
        assert ring.capture(counter_snapshot(2), t=1.0, force=True)

    def test_backwards_clock_dropped_even_forced(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(counter_snapshot(1), t=10.0)
        assert not ring.capture(counter_snapshot(2), t=5.0, force=True)
        assert len(ring) == 1

    def test_due_avoids_snapshot_cost(self):
        ring = HistoryRing(interval=10.0)
        assert ring.due(0.0)  # empty ring: always due
        ring.capture(counter_snapshot(1), t=0.0)
        assert not ring.due(5.0)
        assert ring.due(10.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            HistoryRing(0)
        with pytest.raises(ValueError):
            HistoryRing(interval=-1.0)

    def test_injectable_clock(self):
        now = [100.0]
        ring = HistoryRing(interval=0.0, clock=lambda: now[0])
        ring.capture(counter_snapshot(1))
        assert ring.end_time == 100.0


class TestQueries:
    def test_increase_and_rate_fixed_window(self):
        ring = HistoryRing(interval=0.0)
        for t, v in [(0, 0), (10, 40), (20, 100)]:
            ring.capture(counter_snapshot(v), t=float(t))
        assert ring.increase(COUNTER) == 100.0
        assert ring.increase(COUNTER, window=10.0) == 60.0
        # Fixed-window normalization: divisor is the window, not the
        # (possibly half-empty) retained span.
        assert ring.rate(COUNTER, window=10.0) == 6.0
        # No window: divisor is the ring's span.
        assert ring.rate(COUNTER) == 5.0

    def test_counter_reset_clamps_and_flags(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(counter_snapshot(100), t=0.0)
        ring.capture(counter_snapshot(3), t=1.0)  # restart
        ring.capture(counter_snapshot(10), t=2.0)
        pts = ring.points(COUNTER)
        assert [(v, r) for _, v, r in pts] == [
            (100.0, False), (100.0, True), (107.0, False)]
        # The drop contributes 0; post-reset growth counts from the
        # restart, not from the old high-water mark.  (Unclamped, the
        # endpoint difference would be 10 - 100 = -90.)
        assert ring.increase(COUNTER) == 7.0

    def test_eviction_folds_into_base(self):
        ring = HistoryRing(2, interval=0.0)
        for t, v in [(0, 10), (1, 25), (2, 40)]:
            ring.capture(counter_snapshot(v), t=float(t))
        assert len(ring) == 2
        # The evicted capture's cumulative value survives in the base.
        assert [v for _, v, _ in ring.points(COUNTER)] == [25.0, 40.0]
        assert ring.latest(COUNTER) == 40.0

    def test_shard_labels_stay_distinct_and_sum(self):
        ring = HistoryRing(interval=0.0)
        snap = {COUNTER: {"type": "counter", "help": "t", "series": [
            {"labels": {"shard": "0"}, "value": 10.0},
            {"labels": {"shard": "1"}, "value": 32.0},
        ]}}
        ring.capture(snap, t=0.0)
        assert ring.latest(COUNTER, labels={"shard": "0"}) == 10.0
        assert ring.latest(COUNTER, labels={"shard": "1"}) == 32.0
        assert ring.latest(COUNTER) == 42.0  # selector-free: summed

    def test_gauges_store_values_not_deltas(self):
        ring = HistoryRing(interval=0.0)
        for t, g in [(0, 5), (1, 3), (2, 7)]:
            ring.capture(counter_snapshot(0, gauge=g), t=float(t))
        assert [v for _, v, _ in ring.points(GAUGE)] == [5.0, 3.0, 7.0]
        assert ring.max_over_time(GAUGE) == 7.0
        assert ring.min_over_time(GAUGE) == 3.0
        assert ring.avg_over_time(GAUGE) == 5.0
        assert ring.latest(GAUGE) == 7.0

    def test_histogram_flattens_to_total_count(self):
        ring = HistoryRing(interval=0.0)
        snap = {HIST: {"type": "histogram", "help": "t", "series": [
            {"labels": {}, "counts": [2, 3, 1], "sum": 0.5,
             "lo_exp": -3, "hi_exp": 0},
        ]}}
        ring.capture(snap, t=0.0)
        assert ring.latest(HIST) == 6.0

    def test_absent_is_existence_not_zero(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(counter_snapshot(0), t=0.0)
        assert not ring.absent(COUNTER)  # exists with value 0
        assert ring.absent("aarohi_never_seen_total")
        assert ring.absent(COUNTER, labels={"shard": "9"})

    def test_empty_ring(self):
        ring = HistoryRing()
        assert len(ring) == 0
        assert ring.span == 0.0
        assert ring.start_time is None and ring.end_time is None
        assert ring.points(COUNTER) == []
        assert ring.increase(COUNTER) == 0.0
        assert ring.rate(COUNTER) == 0.0
        assert ring.latest(COUNTER) == 0.0
        assert ring.absent(COUNTER)


class TestRecords:
    def test_ndjson_round_trip(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(counter_snapshot(5, gauge=2), t=0.0)
        ring.capture(counter_snapshot(100, gauge=1), t=1.0)
        ring.capture(counter_snapshot(3, gauge=4), t=2.0)  # reset
        text = ring.render_ndjson()
        records = parse_history_ndjson(text)
        assert records == ring.records()
        # Every line is a self-describing record.
        for line in text.strip().splitlines():
            record = json.loads(line)
            assert set(record) >= {"t", "series", "labels", "value"}
        resets = [r for r in records if r.get("reset")]
        assert len(resets) == 1 and resets[0]["series"] == COUNTER

    def test_records_filter_by_series(self):
        ring = HistoryRing(interval=0.0)
        ring.capture(counter_snapshot(5, gauge=2), t=0.0)
        only = ring.records(COUNTER)
        assert {r["series"] for r in only} == {COUNTER}

    def test_group_history_records(self):
        ring = HistoryRing(interval=0.0)
        snap = {COUNTER: {"type": "counter", "help": "t", "series": [
            {"labels": {"shard": "0"}, "value": 1.0},
            {"labels": {"shard": "1"}, "value": 2.0},
        ]}}
        ring.capture(snap, t=0.0)
        grouped = group_history_records(ring.records())
        assert sorted(grouped) == [
            COUNTER + '{shard="0"}', COUNTER + '{shard="1"}']

    def test_parse_rejects_non_records(self):
        with pytest.raises(ValueError):
            parse_history_ndjson('{"kind":"capsule"}\n')


# ---------------------------------------------------------------------------
# The oracle property (ISSUE 8 satellite): the ring's delta compression
# + base-folding eviction must round-trip exactly against a naive model
# that stores every accepted snapshot in a plain list.
# ---------------------------------------------------------------------------

LABELSETS = ((), (("shard", "0"),), (("shard", "1"),))


@st.composite
def ring_runs(draw):
    """A ring config plus a sequence of offered captures.

    Counter values are free integers (drops are resets), offered at
    non-decreasing integer times so the cadence throttle gets exercised
    (equal/short gaps are dropped when interval > 0).
    """
    capacity = draw(st.integers(1, 6))
    interval = draw(st.integers(0, 3))
    n = draw(st.integers(1, 16))
    offers = []
    t = 0
    for _ in range(n):
        t += draw(st.integers(0, 3))
        series = {}
        for labels in LABELSETS:
            if draw(st.booleans()):
                series[labels] = draw(st.integers(0, 50))
        gauge = (
            draw(st.integers(-20, 20)) if draw(st.booleans()) else None)
        offers.append((t, series, gauge))
    return capacity, interval, offers


def _snapshot(series, gauge):
    snap = {COUNTER: {"type": "counter", "help": "t", "series": [
        {"labels": dict(labels), "value": float(v)}
        for labels, v in series.items()
    ]}}
    if gauge is not None:
        snap[GAUGE] = {
            "type": "gauge", "help": "t",
            "series": [{"labels": {}, "value": float(gauge)}],
        }
    return snap


class NaiveHistory:
    """The oracle: every accepted capture kept verbatim in a list;
    every query recomputed from scratch with the clamped-cumulative
    recurrence.  No deltas, no eviction, no folding."""

    def __init__(self, capacity, interval):
        self.capacity = capacity
        self.interval = interval
        self.accepted = []  # (t, {labels: raw_counter}, gauge)

    def offer(self, t, series, gauge):
        if self.accepted:
            last = self.accepted[-1][0]
            if t < last or t - last < self.interval:
                return False
        self.accepted.append((t, series, gauge))
        return True

    def _counter_states(self, labels):
        """Per accepted-capture index: ``(seen, cum, present, reset)``
        for one label set, where ``cum`` is the clamped-cumulative
        recurrence and ``seen`` means the series has appeared at or
        before this capture (its value carries forward when absent)."""
        out, cum, prev = [], 0.0, None
        for _, series, _ in self.accepted:
            if labels in series:
                raw = float(series[labels])
                if prev is None:
                    cum, reset = raw, False
                elif raw < prev:
                    reset = True  # clamp: delta 0
                else:
                    cum += raw - prev
                    reset = False
                prev = raw
                out.append((True, cum, True, reset))
            else:
                out.append((prev is not None, cum, False, False))
        return out

    def points(self, name, labels=None, window=None):
        start = max(0, len(self.accepted) - self.capacity)
        retained = self.accepted[start:]
        if not retained:
            return []
        cutoff = None if window is None else retained[-1][0] - window
        if name == GAUGE:
            if labels:
                return []
            return [
                (t, float(g), False) for t, _, g in retained
                if g is not None and (cutoff is None or t >= cutoff)]
        matched = [
            ls for ls in LABELSETS
            if not labels or set(labels.items()) <= set(ls)]
        states = {ls: self._counter_states(ls) for ls in matched}
        out = []
        for idx in range(start, len(self.accepted)):
            t, series, _ = self.accepted[idx]
            if cutoff is not None and t < cutoff:
                continue
            if not any(states[ls][idx][2] for ls in matched):
                continue
            value = sum(
                states[ls][idx][1] for ls in matched
                if states[ls][idx][0])
            reset = any(states[ls][idx][3] for ls in matched)
            out.append((t, value, reset))
        return out

    def increase(self, name, window=None, labels=None):
        if name == GAUGE:
            return 0.0
        pts = self.points(name, labels, window)
        return pts[-1][1] - pts[0][1] if len(pts) >= 2 else 0.0

    def latest(self, name, labels=None):
        if name == GAUGE:
            if labels:
                return 0.0
            gauges = [g for _, _, g in self.accepted if g is not None]
            return float(gauges[-1]) if gauges else 0.0
        matched = [
            ls for ls in LABELSETS
            if not labels or set(labels.items()) <= set(ls)]
        total = 0.0
        for ls in matched:
            states = self._counter_states(ls)
            if states and states[-1][0]:
                total += states[-1][1]
        return total

    def absent(self, name, window=None, labels=None):
        return not self.points(name, labels, window)


@settings(max_examples=120, deadline=None)
@given(ring_runs(), st.one_of(st.none(), st.integers(0, 8)))
def test_ring_matches_naive_oracle(run, window):
    """capture→evict→query == a naive list of every accepted snapshot,
    exactly, for every query in the kit, under random cadences, ring
    sizes, and counter patterns including resets."""
    capacity, interval, offers = run
    ring = HistoryRing(capacity, interval=float(interval))
    oracle = NaiveHistory(capacity, interval)
    for t, series, gauge in offers:
        accepted = ring.capture(_snapshot(series, gauge), t=float(t))
        assert accepted == oracle.offer(t, series, gauge)

    window_f = None if window is None else float(window)
    for labels in (None, {"shard": "0"}, {"shard": "1"}):
        expected = oracle.points(COUNTER, labels, window_f)
        assert ring.points(COUNTER, labels, window_f) == expected
        assert ring.increase(COUNTER, window_f, labels) == (
            oracle.increase(COUNTER, window_f, labels))
        assert ring.latest(COUNTER, labels) == (
            oracle.latest(COUNTER, labels))
        assert ring.absent(COUNTER, window_f, labels) == (
            oracle.absent(COUNTER, window_f, labels))
        values = [v for _, v, _ in expected]
        assert ring.max_over_time(COUNTER, window_f, labels) == (
            max(values) if values else 0.0)
        assert ring.avg_over_time(COUNTER, window_f, labels) == (
            sum(values) / len(values) if values else 0.0)
    assert ring.points(GAUGE, None, window_f) == (
        oracle.points(GAUGE, None, window_f))
    assert ring.latest(GAUGE) == oracle.latest(GAUGE)
