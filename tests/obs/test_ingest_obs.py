"""Tests for the ingest-funnel observability plane (ISSUE 5)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.logsim import CorruptionSpec, IngestStats, corrupt_window
from repro.obs import (
    INGEST_DECODED,
    INGEST_FUNNEL_STAGES,
    INGEST_LINES_READ,
    INGEST_QUARANTINE_BURN,
    INGEST_QUARANTINED,
    LOGSIM_CORRUPTIONS,
    NEGATIVE_DELTA_T,
    Observability,
    ObsServer,
)


def series_value(snapshot, name):
    (entry,) = snapshot[name]["series"]
    return entry["value"]


def ingest_delta(lines_read, quarantined, **extra):
    stats = IngestStats(
        lines_read=lines_read, decoded=lines_read - quarantined,
        quarantined=quarantined, **extra)
    assert stats.funnel_ok
    return stats


class TestRecordIngest:
    def test_counters_published_with_funnel_identity(self):
        obs = Observability()
        obs.record_ingest(ingest_delta(100, 3, reordered=2))
        obs.record_ingest(ingest_delta(50, 1))
        snap = obs.registry.snapshot()
        assert series_value(snap, INGEST_LINES_READ) == 150
        assert series_value(snap, INGEST_DECODED) == 146
        assert series_value(snap, INGEST_QUARANTINED) == 4
        stage_total = sum(
            series_value(snap, name) for name, _ in INGEST_FUNNEL_STAGES)
        assert stage_total == series_value(snap, INGEST_LINES_READ)

    def test_burn_rate_gauge(self):
        obs = Observability(quarantine_slo=0.10)
        obs.record_ingest(ingest_delta(100, 5))
        snap = obs.registry.snapshot()
        assert series_value(snap, INGEST_QUARANTINE_BURN) == \
            pytest.approx(0.5)

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            Observability(quarantine_slo=0.0)
        with pytest.raises(ValueError):
            Observability(quarantine_slo=1.5)


class TestRecordCorruptions:
    def test_injected_kinds_labeled(self):
        from repro.core.events import LogEvent

        events = [LogEvent(float(i), f"n{i % 3}", f"msg {i}")
                  for i in range(300)]
        _, report = corrupt_window(
            events, CorruptionSpec.all_kinds(0.05), seed=1)
        obs = Observability()
        obs.record_corruptions(report)
        snap = obs.registry.snapshot()
        kinds = {s["labels"]["kind"]: s["value"]
                 for s in snap[LOGSIM_CORRUPTIONS]["series"]}
        assert kinds.get("truncated", 0) == report.truncated
        assert kinds.get("dropped", 0) == report.dropped
        assert "events_in" not in kinds  # volume fields are not faults


class TestNegativeDeltaTMetric:
    def test_published_from_engine_stats(self):
        from repro.core.matcher import MatcherStats

        obs = Observability()
        a, b = MatcherStats(), MatcherStats()
        a.negative_dt, b.negative_dt = 3, 2
        obs.record_engine_stats([a, b])
        snap = obs.registry.snapshot()
        assert series_value(snap, NEGATIVE_DELTA_T) == 5


class TestHealthzBurn:
    def fetch_healthz(self, obs):
        with ObsServer(obs) as server:
            url = server.url("/healthz")
            try:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    return resp.status, json.loads(resp.read().decode())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read().decode())

    def test_quarantine_within_slo_is_ok(self):
        obs = Observability(quarantine_slo=0.10)
        obs.record_ingest(ingest_delta(1000, 5))  # 0.5% << 10%
        status, payload = self.fetch_healthz(obs)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["ingest"]["ok"] is True
        assert payload["ingest"]["burn_rate"] == pytest.approx(0.05)

    def test_quarantine_burn_over_slo_fails(self):
        obs = Observability(quarantine_slo=0.01)
        obs.record_ingest(ingest_delta(1000, 100))  # 10% >> 1% SLO
        status, payload = self.fetch_healthz(obs)
        assert status == 503
        assert payload["status"] == "failing"
        assert payload["ingest"]["ok"] is False
        assert payload["ingest"]["burn_rate"] == pytest.approx(10.0)

    def test_no_ingest_means_no_section(self):
        obs = Observability()
        status, payload = self.fetch_healthz(obs)
        assert status == 200
        assert "ingest" not in payload
