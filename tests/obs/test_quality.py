"""Tests for the online quality scoreboard and the discard-fraction
CUSUM, including the differential check that the rolling numbers agree
with the offline :func:`pair_predictions` evaluation."""

import pytest

from repro.core.events import NodeFailure, Prediction
from repro.core.leadtime import pair_predictions
from repro.obs import (
    DISCARD_DRIFT_ALARM,
    DiscardDriftDetector,
    Observability,
    QUALITY_LEAD_SECONDS,
    QUALITY_PRECISION,
    QualityScoreboard,
    Registry,
    histogram_series,
)


def pred(node, flagged_at, chain="FC_1"):
    return Prediction(
        node=node, chain_id=chain, flagged_at=flagged_at,
        prediction_time=0.0)


def fail(node, time):
    return NodeFailure(node=node, time=time, chain_id="FC_1")


class TestScoreboardScoring:
    def test_matched_prediction_scores_tp_with_lead(self):
        board = QualityScoreboard(horizon=1800.0)
        board.add_prediction(pred("n1", 100.0))
        board.add_failure(fail("n1", 400.0))
        board.advance(500.0)
        score = board.score()
        assert score.true_positives == 1
        assert score.false_positives == 0
        assert score.false_negatives == 0
        assert score.lead_times == (300.0,)
        assert score.precision == 1.0 and score.recall == 1.0

    def test_unmatched_prediction_is_fp(self):
        board = QualityScoreboard()
        board.add_prediction(pred("n1", 100.0))
        board.advance(3000.0)
        score = board.score()
        assert score.false_positives == 1
        assert score.precision == 0.0

    def test_unpredicted_failure_is_fn(self):
        board = QualityScoreboard()
        board.add_failure(fail("n2", 100.0))
        board.advance(200.0)
        score = board.score()
        assert score.false_negatives == 1
        assert score.recall == 0.0

    def test_future_failure_is_not_yet_a_miss(self):
        board = QualityScoreboard()
        board.add_failure(fail("n2", 900.0))
        board.advance(500.0)
        assert board.score().false_negatives == 0
        board.advance(901.0)
        assert board.score().false_negatives == 1

    def test_duplicate_flags_unpenalized(self):
        board = QualityScoreboard()
        board.add_predictions([pred("n1", 100.0), pred("n1", 200.0)])
        board.add_failure(fail("n1", 400.0))
        board.advance(500.0)
        score = board.score()
        # Earliest flag keeps the (longest) lead; the later duplicate is
        # neither a TP nor an FP — exactly pair_predictions' rule.
        assert score.true_positives == 1
        assert score.false_positives == 0
        assert score.lead_times == (300.0,)

    def test_actionable_fraction_uses_mitigation_threshold(self):
        board = QualityScoreboard(mitigation_threshold=180.0)
        board.add_prediction(pred("n1", 100.0))
        board.add_failure(fail("n1", 400.0))  # 300 s lead: actionable
        board.add_prediction(pred("n2", 100.0))
        board.add_failure(fail("n2", 160.0))  # 60 s lead: too late
        board.advance(500.0)
        assert board.score().actionable_fraction == 0.5

    def test_window_eviction(self):
        board = QualityScoreboard(window=1000.0)
        board.add_prediction(pred("n1", 100.0))
        board.add_failure(fail("n1", 200.0))
        board.advance(500.0)
        assert board.score().true_positives == 1
        board.advance(1500.0)  # cutoff 500: both records evicted
        score = board.score()
        assert score.true_positives == 0
        assert score.false_negatives == 0


class TestScoreboardDifferential:
    """Acceptance: the scoreboard's final-window numbers equal the
    offline pairing over the same records, on a real fleet run."""

    def test_agrees_with_offline_pairing(self):
        from repro.core import PredictorFleet
        from repro.logsim import ClusterLogGenerator, HPC3

        gen = ClusterLogGenerator(HPC3, seed=29)
        window = gen.generate_window(
            duration=1800.0, n_nodes=12, n_failures=5, n_spurious=2)
        board = QualityScoreboard(
            window=10 * window.events[-1].time, horizon=1800.0)
        obs = Observability(quality=board)
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout, obs=obs)
        board.add_failures(window.failures)

        # Feed in slices, as a live run would.  The wired fleet folds
        # each run's predictions and event-time advance into the
        # scoreboard itself — no manual record_quality_run here (that
        # would double-feed).
        events = window.events
        step = max(1, len(events) // 7)
        report_predictions = []
        for start in range(0, len(events), step):
            chunk = events[start:start + step]
            report = fleet.run(chunk, timing="off")
            report_predictions.extend(report.predictions)

        final_now = events[-1].time
        offline = pair_predictions(
            [p for p in report_predictions if p.flagged_at <= final_now],
            [f for f in window.failures if f.time <= final_now],
            horizon=1800.0)
        online = board.score()
        assert online.true_positives == offline.true_positives
        assert online.false_positives == len(offline.false_positives)
        assert online.false_negatives == len(offline.missed_failures)
        assert sorted(online.lead_times) == sorted(
            r.lead_time for r in offline.matched)

    def test_lead_histogram_credits_each_pair_once(self):
        board = QualityScoreboard()
        board.add_prediction(pred("n1", 100.0))
        board.add_failure(fail("n1", 400.0))
        board.advance(500.0)
        registry = Registry()
        board.publish(registry)
        board.publish(registry)  # idempotent: no double crediting
        (entry,) = histogram_series(registry.snapshot(), QUALITY_LEAD_SECONDS)
        assert sum(entry["counts"]) == 1
        assert entry["sum"] == 300.0

    def test_publish_mirrors_score_gauges(self):
        board = QualityScoreboard()
        board.add_prediction(pred("n1", 100.0))
        board.add_failure(fail("n1", 400.0))
        board.advance(500.0)
        registry = Registry()
        board.publish(registry)
        snap = registry.snapshot()
        (precision,) = snap[QUALITY_PRECISION]["series"]
        assert precision["value"] == 1.0


class TestDiscardDrift:
    def test_warmup_calibrates_reference(self):
        det = DiscardDriftDetector(warmup=3, drift=0.005, threshold=0.05)
        for _ in range(3):
            det.update(990, 1000)
        assert det.reference == pytest.approx(0.99)
        assert not det.alarm

    def test_stable_stream_never_alarms(self):
        det = DiscardDriftDetector(reference=0.99, warmup=0)
        for _ in range(200):
            assert det.update(990, 1000) is False
        assert det.statistic == 0.0

    def test_sustained_shift_alarms(self):
        det = DiscardDriftDetector(
            reference=0.99, warmup=0, drift=0.005, threshold=0.05)
        # Discard fraction drops to 0.90: vocabulary/workload changed.
        fired = [det.update(900, 1000) for _ in range(20)]
        assert any(fired)
        assert det.alarm and det.tripped

    def test_tripped_is_sticky_until_reset(self):
        det = DiscardDriftDetector(
            reference=0.99, warmup=0, drift=0.005, threshold=0.05)
        for _ in range(20):
            det.update(900, 1000)
        assert det.tripped
        # CUSUM decays by only ``drift`` per in-control batch, so the
        # alarm clears slowly; ``tripped`` stays up regardless.
        for _ in range(400):
            det.update(990, 1000)  # back to normal
        assert not det.alarm
        assert det.tripped  # sticky: someone must look before clearing
        det.reset()
        assert not det.tripped

    def test_empty_batch_ignored(self):
        det = DiscardDriftDetector(reference=0.5, warmup=0)
        assert det.update(0, 0) is False
        assert det.samples == 0

    def test_alarm_reaches_registry_via_scoreboard(self):
        det = DiscardDriftDetector(
            reference=0.99, warmup=0, drift=0.005, threshold=0.05)
        board = QualityScoreboard(drift=det)
        for _ in range(20):
            board.record_discard(900, 1000)
        registry = Registry()
        board.publish(registry)
        (alarm,) = registry.snapshot()[DISCARD_DRIFT_ALARM]["series"]
        assert alarm["value"] == 1.0
