"""Lifecycle-trace integration: every chain state transition is traced.

Drives real predictors (both backends) through activation, advance,
ΔT timeout, manual reset, and completion, then round-trips the JSONL
and checks exactly one trace record per transition.  Also covers the
CLI artifact path: ``predict --metrics --trace`` must produce valid
Prometheus text and a valid trace.
"""

import io

import pytest

from repro.core import ChainSet, FailureChain, LogEvent
from repro.core.events import Severity
from repro.core.predictor import AarohiPredictor
from repro.obs import Observability, Tracer
from repro.obs.tracing import (
    CHAIN_STARTED,
    DELTA_T_TIMEOUT,
    EVENT_KINDS,
    PARSER_RESET,
    PREDICTION_FIRED,
    TOKEN_ADVANCED,
    lifecycle_counts,
    read_trace,
)

ZERO_CLOCK = lambda: 0.0  # noqa: E731


@pytest.fixture(scope="module")
def store():
    from repro.templates import TemplateStore

    s = TemplateStore()
    s.add("alpha fault *", Severity.ERRONEOUS, token=301)
    s.add("beta warn *", Severity.UNKNOWN, token=302)
    s.add("gamma err *", Severity.ERRONEOUS, token=303)
    return s


@pytest.fixture(scope="module")
def chains():
    return ChainSet([FailureChain("FC_x", (301, 302, 303))])


def traced_predictor(store, chains, backend, sample=1.0, timeout=100.0):
    sink = io.StringIO()
    obs = Observability(
        tracer=Tracer(sink, sample=sample, clock=lambda: 0.0))
    predictor = AarohiPredictor.from_store(
        chains, store, timeout=timeout, backend=backend,
        clock=ZERO_CLOCK, node="node-7", obs=obs)
    return predictor, sink


def drive_full_lifecycle(predictor):
    """Activation → advance → ΔT timeout → manual reset → completion."""
    # 1. Activate, advance once, then a 1000 s gap trips the timeout.
    predictor.process(LogEvent(0.0, "node-7", "alpha fault a"))
    predictor.process(LogEvent(1.0, "node-7", "beta warn b"))
    predictor.process(LogEvent(1001.0, "node-7", "beta warn again"))
    # 2. Activate again, then reset manually mid-chain.
    predictor.process(LogEvent(2000.0, "node-7", "alpha fault c"))
    predictor.reset()
    # 3. Clean complete run → prediction.
    predictor.process(LogEvent(3000.0, "node-7", "alpha fault d"))
    predictor.process(LogEvent(3001.0, "node-7", "beta warn e"))
    return predictor.process(LogEvent(3002.0, "node-7", "gamma err f"))


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
class TestEveryTransitionTraced:
    def test_all_event_kinds_emitted_once_expected(self, store, chains, backend):
        predictor, sink = traced_predictor(store, chains, backend)
        prediction = drive_full_lifecycle(predictor)
        assert prediction is not None
        records = read_trace(io.StringIO(sink.getvalue()))
        counts = lifecycle_counts(records)
        assert set(counts) == set(EVENT_KINDS)
        # Three activations (the timed-out token does not restart a
        # chain: "beta" is not a chain-starting token).
        assert counts[CHAIN_STARTED] == 3
        assert counts[DELTA_T_TIMEOUT] == 1
        assert counts[PARSER_RESET] == 1
        assert counts[PREDICTION_FIRED] == 1
        # Advances: one mid-chain before the timeout + the full run's
        # two non-activating phrases (backends agree).
        assert counts[TOKEN_ADVANCED] == 3

    def test_records_carry_node_and_times(self, store, chains, backend):
        predictor, sink = traced_predictor(store, chains, backend)
        drive_full_lifecycle(predictor)
        records = read_trace(io.StringIO(sink.getvalue()))
        assert all(r["node"] == "node-7" for r in records)
        assert all("wall" in r for r in records)
        (fired,) = [r for r in records if r["ev"] == PREDICTION_FIRED]
        assert fired["chain"] == "FC_x"
        assert fired["t"] == pytest.approx(3002.0)
        assert fired["n_tokens"] == 3
        assert "prediction_time" in fired
        (timeout,) = [r for r in records if r["ev"] == DELTA_T_TIMEOUT]
        assert timeout["gap"] == pytest.approx(1000.0)
        (reset,) = [r for r in records if r["ev"] == PARSER_RESET]
        assert reset["cause"] == "manual"

    def test_sample_zero_still_fires_predictions(self, store, chains, backend):
        predictor, sink = traced_predictor(store, chains, backend, sample=0.0)
        prediction = drive_full_lifecycle(predictor)
        assert prediction is not None
        records = read_trace(io.StringIO(sink.getvalue()))
        # Lifecycle events are sampled out; prediction_fired never is.
        kinds = {r["ev"] for r in records}
        assert kinds == {PREDICTION_FIRED}

    def test_sampled_lifecycles_are_complete(self, store, chains, backend):
        """A sampled chain traces its whole lifecycle; an unsampled one
        contributes nothing but the (always-on) prediction record."""
        predictor, sink = traced_predictor(store, chains, backend, sample=0.5)
        for base in (0.0, 100.0, 200.0, 300.0):
            predictor.process(LogEvent(base + 0.0, "node-7", "alpha fault a"))
            predictor.process(LogEvent(base + 1.0, "node-7", "beta warn b"))
            predictor.process(LogEvent(base + 2.0, "node-7", "gamma err c"))
        records = read_trace(io.StringIO(sink.getvalue()))
        counts = lifecycle_counts(records)
        # Accumulator starts full: activations 1, 2, 4 are sampled.
        assert counts[CHAIN_STARTED] == 3
        assert counts[TOKEN_ADVANCED] == 6  # both advances of each sampled run
        assert counts[PREDICTION_FIRED] == 4  # all of them


class TestBatchedDriversTrace:
    @pytest.mark.parametrize("backend", ["matcher", "lalr"])
    @pytest.mark.parametrize("timing", ["full", "sampled", "off"])
    def test_process_batch_emits_same_trace(
        self, store, chains, backend, timing
    ):
        per_event, sink_ref = traced_predictor(store, chains, backend)
        drive_full_lifecycle(per_event)
        expected = read_trace(io.StringIO(sink_ref.getvalue()))

        batched, sink = traced_predictor(store, chains, backend)
        events = [
            LogEvent(0.0, "node-7", "alpha fault a"),
            LogEvent(1.0, "node-7", "beta warn b"),
            LogEvent(1001.0, "node-7", "beta warn again"),
            LogEvent(2000.0, "node-7", "alpha fault c"),
        ]
        batched.process_batch(events, timing=timing)
        batched.reset()
        batched.process_batch([
            LogEvent(3000.0, "node-7", "alpha fault d"),
            LogEvent(3001.0, "node-7", "beta warn e"),
            LogEvent(3002.0, "node-7", "gamma err f"),
        ], timing=timing)
        got = read_trace(io.StringIO(sink.getvalue()))
        strip = lambda rs: [  # noqa: E731
            {k: v for k, v in r.items() if k != "prediction_time"}
            for r in rs
        ]
        assert strip(got) == strip(expected)


class TestCliArtifacts:
    def test_predict_writes_valid_prometheus_and_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import LINES_SEEN, parse_prometheus

        log = tmp_path / "w.log"
        prom = tmp_path / "m.prom"
        trace = tmp_path / "t.jsonl"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5", "--log", str(log),
            "--metrics", str(prom), "--trace", str(trace),
        ])
        capsys.readouterr()
        assert rc == 0
        snapshot = parse_prometheus(prom.read_text())
        lines_seen = snapshot[LINES_SEEN]["series"][0]["value"]
        assert lines_seen == len(log.read_text().splitlines())
        records = read_trace(str(trace))
        counts = lifecycle_counts(records)
        assert counts[CHAIN_STARTED] > 0
        assert counts[TOKEN_ADVANCED] > 0
        assert counts[PREDICTION_FIRED] > 0
        # Trace agrees with the metrics snapshot on predictions.
        from repro.obs import PREDICTIONS

        assert counts[PREDICTION_FIRED] == (
            snapshot[PREDICTIONS]["series"][0]["value"])
