"""Fleet- and parallel-level observability wiring tests."""

import pytest

from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
from repro.core.events import Severity
from repro.obs import (
    CHAIN_MATCHES,
    FUNNEL_STAGES,
    LINES_SEEN,
    LINES_TOKENIZED,
    LOGSIM_EVENTS,
    LOGSIM_FAULTS,
    LOGSIM_WINDOWS,
    Observability,
    PREDICTION_SECONDS,
    PREDICTIONS,
    SCANNER_DFA_MATCHES,
    histogram_series,
)
from repro.templates import TemplateStore

ZERO_CLOCK = lambda: 0.0  # noqa: E731


@pytest.fixture(scope="module")
def store():
    s = TemplateStore()
    s.add("alpha fault *", Severity.ERRONEOUS, token=301)
    s.add("beta warn *", Severity.UNKNOWN, token=302)
    s.add("gamma err *", Severity.ERRONEOUS, token=303)
    return s


@pytest.fixture(scope="module")
def chains():
    return ChainSet([FailureChain("FC_x", (301, 302, 303))])


def mixed_stream(repeats=5):
    msgs = [
        "alpha fault a", "benign chatter one", "beta warn b",
        "unrelated noise xyz", "gamma err c", "zeta nothing",
    ]
    # One node per repeat: each node sees whole chains plus noise.
    return [
        LogEvent(float(r * len(msgs) + i), f"node-{r % 3}", m)
        for r in range(repeats)
        for i, m in enumerate(msgs)
    ]


def counter_total(snapshot, name):
    family = snapshot.get(name, {"series": []})
    return sum(entry["value"] for entry in family["series"])


class TestFleetRegistry:
    def test_counters_match_report_stats(self, store, chains):
        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=ZERO_CLOCK, obs=obs)
        report = fleet.run(mixed_stream())
        snap = obs.registry.snapshot()
        assert counter_total(snap, LINES_SEEN) == report.lines_seen
        assert counter_total(snap, LINES_TOKENIZED) == report.lines_tokenized
        assert counter_total(snap, PREDICTIONS) == len(report.predictions)

    def test_funnel_counters_sum_to_lines_seen(self, store, chains):
        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=ZERO_CLOCK, obs=obs)
        report = fleet.run(mixed_stream())
        snap = obs.registry.snapshot()
        funnel_sum = sum(counter_total(snap, name) for name, _ in FUNNEL_STAGES)
        assert funnel_sum == report.lines_seen
        # Every FC-related phrase is a DFA match (first full scan) or a
        # memo hit; the store's matcher found exactly the tokenized ones.
        assert counter_total(snap, SCANNER_DFA_MATCHES) <= report.lines_tokenized

    def test_second_run_extends_not_doubles(self, store, chains):
        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=ZERO_CLOCK, obs=obs)
        events = mixed_stream()
        fleet.run(events)
        fleet.run(events)
        snap = obs.registry.snapshot()
        assert counter_total(snap, LINES_SEEN) == 2 * len(events)
        funnel_sum = sum(counter_total(snap, name) for name, _ in FUNNEL_STAGES)
        assert funnel_sum == 2 * len(events)

    def test_latency_histogram_counts_predictions(self, store, chains):
        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, obs=obs)
        report = fleet.run(mixed_stream())
        assert report.predictions  # the stream completes chains
        (entry,) = histogram_series(
            obs.registry.snapshot(), PREDICTION_SECONDS)
        assert sum(entry["counts"]) == len(report.predictions)

    def test_chain_matches_mirror_engine_stats(self, store, chains):
        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=ZERO_CLOCK, obs=obs)
        report = fleet.run(mixed_stream())
        snap = obs.registry.snapshot()
        assert counter_total(snap, CHAIN_MATCHES) == len(report.predictions)

    def test_no_obs_no_counting_scanner(self, store, chains):
        from repro.templates.store import CountingTemplateScanner

        plain = PredictorFleet.from_store(chains, store, timeout=100.0)
        assert not isinstance(plain.scanner, CountingTemplateScanner)
        wired = PredictorFleet.from_store(
            chains, store, timeout=100.0, obs=Observability())
        assert isinstance(wired.scanner, CountingTemplateScanner)


class TestParallelFleetObs:
    @pytest.fixture(scope="class")
    def gen(self):
        from repro.logsim import ClusterLogGenerator, HPC3

        return ClusterLogGenerator(HPC3, seed=61)

    @pytest.fixture(scope="class")
    def bundle(self, gen):
        from repro.persistence import PredictorBundle

        return PredictorBundle(
            store=gen.store, chains=gen.chains,
            timeout=gen.recommended_timeout, system="HPC3")

    def test_worker_deltas_merge_without_double_count(self, gen, bundle):
        from repro.core.parallel import ParallelFleet

        window = gen.generate_window(
            duration=1800.0, n_nodes=12, n_failures=4, n_spurious=0)
        serial_obs = Observability()
        serial = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout,
            obs=serial_obs)
        serial_report = serial.run(window.events)

        obs = Observability()
        with ParallelFleet(bundle, n_workers=2, obs=obs,
                           chunk_lines=64) as parallel:
            predictions = parallel.run(window.events)
            assert len(predictions) == len(serial_report.predictions)
            snap = obs.registry.snapshot()
            # Summed across shard labels, totals equal the serial run's.
            assert counter_total(snap, LINES_SEEN) == len(window.events)
            funnel_sum = sum(
                counter_total(snap, name) for name, _ in FUNNEL_STAGES)
            assert funnel_sum == len(window.events)
            assert counter_total(snap, PREDICTIONS) == len(predictions)
            # PredictorStats merged back through snapshot/diff/add.
            assert parallel.stats.lines_seen == len(window.events)
            assert parallel.stats.predictions == len(predictions)

    def test_shard_labels_distinguish_workers(self, gen, bundle):
        from repro.core.parallel import ParallelFleet

        window = gen.generate_window(
            duration=1800.0, n_nodes=12, n_failures=2, n_spurious=0)
        obs = Observability()
        with ParallelFleet(bundle, n_workers=2, obs=obs) as parallel:
            parallel.run(window.events)
        snap = obs.registry.snapshot()
        shards = {
            entry["labels"].get("shard")
            for entry in snap[LINES_SEEN]["series"]
        }
        assert shards == {"0", "1"}


class TestLogsimObs:
    def test_generator_records_windows_events_faults(self):
        from repro.logsim import ClusterLogGenerator, HPC3

        obs = Observability()
        gen = ClusterLogGenerator(HPC3, seed=11, obs=obs)
        window = gen.generate_window(
            duration=900.0, n_nodes=8, n_failures=3, n_spurious=1)
        snap = obs.registry.snapshot()
        assert counter_total(snap, LOGSIM_WINDOWS) == 1
        assert counter_total(snap, LOGSIM_EVENTS) == len(window.events)
        assert counter_total(snap, LOGSIM_FAULTS) == len(window.injections)
        kinds = {
            entry["labels"]["kind"]: entry["value"]
            for entry in snap[LOGSIM_FAULTS]["series"]
        }
        assert kinds.get("spurious") == 1
