"""Tests for the allocation-free metric primitives and the registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    NULL_REGISTRY,
    Registry,
    diff_snapshots,
    snapshot_asymmetry,
)


class TestCounter:
    def test_inc_add_set_total(self):
        c = Counter()
        c.inc()
        c.inc(4)
        c.add(5)
        assert c.value == 10
        c.set_total(42)
        assert c.value == 42


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3.0)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(3.5)


class TestHistogram:
    def test_bucket_index_edges(self):
        h = Histogram(lo_exp=-3, hi_exp=3)
        assert h.bucket_index(0.0) == 0
        assert h.bucket_index(-1.0) == 0
        assert h.bucket_index(1e-9) == 0  # underflow clamps low
        assert h.bucket_index(1e9) == len(h.counts) - 1  # overflow clamps high

    def test_bucket_boundaries_are_powers_of_two(self):
        h = Histogram(lo_exp=0, hi_exp=4)
        # Bucket i holds values in [2**(lo_exp+i-1), 2**(lo_exp+i)).
        assert h.bucket_index(0.5) == 0  # [0.5, 1)
        assert h.bucket_index(1.0) == 1  # [1, 2)
        assert h.bucket_index(1.5) == 1
        assert h.bucket_index(2.0) == 2  # [2, 4)
        assert h.bucket_index(2.1) == 2

    def test_observe_accumulates(self):
        h = Histogram(lo_exp=-2, hi_exp=2)
        h.observe(0.5)
        h.observe_many([0.5, 3.0])
        assert h.count == 3
        assert h.sum == pytest.approx(4.0)

    def test_upper_bounds_align_with_counts(self):
        h = Histogram(lo_exp=-2, hi_exp=2)
        bounds = h.upper_bounds()
        assert len(bounds) == len(h.counts)
        assert bounds[-1] == math.inf
        assert bounds[0] == pytest.approx(0.25)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram(lo_exp=3, hi_exp=3)


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        r = Registry()
        assert r.counter("x_total") is r.counter("x_total")
        assert r.counter("x_total", node="a") is not r.counter("x_total")

    def test_kind_conflict_rejected(self):
        r = Registry()
        r.counter("thing")
        with pytest.raises(ValueError):
            r.gauge("thing")

    def test_snapshot_shape(self):
        r = Registry()
        r.counter("c_total", "help!", node="a").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h_seconds", lo_exp=-2, hi_exp=2).observe(0.5)
        snap = r.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["help"] == "help!"
        assert snap["c_total"]["series"][0] == {
            "labels": {"node": "a"}, "value": 2}
        assert snap["g"]["series"][0]["value"] == 1.5
        hist = snap["h_seconds"]["series"][0]
        assert sum(hist["counts"]) == 1
        assert hist["lo_exp"] == -2

    def test_merge_accumulates(self):
        a, b = Registry(), Registry()
        for r, n in ((a, 2), (b, 3)):
            r.counter("c_total").inc(n)
            r.gauge("g").set(n)
            r.histogram("h", lo_exp=0, hi_exp=4).observe(n)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["c_total"]["series"][0]["value"] == 5
        assert snap["g"]["series"][0]["value"] == 3  # last write wins
        assert sum(snap["h"]["series"][0]["counts"]) == 2
        assert snap["h"]["series"][0]["sum"] == pytest.approx(5.0)

    def test_merge_bucket_layout_mismatch_rejected(self):
        a, b = Registry(), Registry()
        a.histogram("h", lo_exp=0, hi_exp=4)
        b.histogram("h", lo_exp=0, hi_exp=8).observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())


class TestDiffSnapshots:
    def test_counter_and_histogram_delta(self):
        r = Registry()
        r.counter("c_total").inc(2)
        r.histogram("h", lo_exp=0, hi_exp=4).observe(1.0)
        old = r.snapshot()
        r.counter("c_total").inc(3)
        r.histogram("h", lo_exp=0, hi_exp=4).observe(2.0)
        delta = diff_snapshots(r.snapshot(), old)
        assert delta["c_total"]["series"][0]["value"] == 3
        assert sum(delta["h"]["series"][0]["counts"]) == 1
        assert delta["h"]["series"][0]["sum"] == pytest.approx(2.0)

    def test_gauges_pass_through(self):
        r = Registry()
        r.gauge("g").set(1.0)
        old = r.snapshot()
        r.gauge("g").set(9.0)
        delta = diff_snapshots(r.snapshot(), old)
        assert delta["g"]["series"][0]["value"] == 9.0

    def test_unchanged_series_dropped(self):
        r = Registry()
        r.counter("c_total").inc(2)
        snap = r.snapshot()
        assert "c_total" not in diff_snapshots(snap, snap)

    def test_none_old_passes_through(self):
        r = Registry()
        r.counter("c_total").inc(2)
        snap = r.snapshot()
        assert diff_snapshots(snap, None) is snap

    def test_delta_merges_without_double_count(self):
        """The ParallelFleet shipping path: cumulative worker registry,
        per-chunk deltas merged into the parent."""
        worker, parent = Registry(), Registry()
        last = None
        for chunk in (2, 3, 5):
            worker.counter("c_total").inc(chunk)
            snap = worker.snapshot()
            parent.merge(diff_snapshots(snap, last))
            last = snap
        assert parent.snapshot()["c_total"]["series"][0]["value"] == 10

    def test_counter_reset_clamps_to_zero_with_marker(self):
        """A restarted process's counters go backwards between
        snapshots; the delta clamps to 0 and flags ``reset`` instead of
        reporting a negative increase."""
        old_r, new_r = Registry(), Registry()
        old_r.counter("c_total").inc(100)
        new_r.counter("c_total").inc(3)
        delta = diff_snapshots(new_r.snapshot(), old_r.snapshot())
        (entry,) = delta["c_total"]["series"]
        assert entry["value"] == 0.0
        assert entry["reset"] is True

    def test_histogram_reset_flags_and_passes_through(self):
        old_r, new_r = Registry(), Registry()
        old_r.histogram("h", lo_exp=0, hi_exp=4).observe(1.0)
        old_r.histogram("h", lo_exp=0, hi_exp=4).observe(1.0)
        new_r.histogram("h", lo_exp=0, hi_exp=4).observe(1.0)
        delta = diff_snapshots(new_r.snapshot(), old_r.snapshot())
        (entry,) = delta["h"]["series"]
        assert entry["reset"] is True
        # Post-restart cumulative state, not a negative bucket delta.
        assert sum(entry["counts"]) == 1

    def test_reset_series_lists_display_names(self):
        from repro.obs import reset_series

        old_r, new_r = Registry(), Registry()
        old_r.counter("c_total", shard="0").inc(100)
        new_r.counter("c_total", shard="0").inc(3)
        new_r.counter("ok_total").inc(5)
        delta = diff_snapshots(new_r.snapshot(), old_r.snapshot())
        assert reset_series(delta) == ['c_total{shard="0"}']

    def test_merge_after_reset_does_not_go_backwards(self):
        """The shipping path survives a worker restart: the clamped
        delta folds as 0, so the parent total never decreases."""
        worker, parent = Registry(), Registry()
        worker.counter("c_total").inc(10)
        snap = worker.snapshot()
        parent.merge(diff_snapshots(snap, None))
        restarted = Registry()
        restarted.counter("c_total").inc(2)
        parent.merge(diff_snapshots(restarted.snapshot(), snap))
        assert parent.snapshot()["c_total"]["series"][0]["value"] == 10

    def test_reconfigured_histogram_passes_through_whole(self):
        """A bucket-layout change between snapshots must not be
        zip-truncated into garbage — the new cumulative state passes
        through untouched."""
        old_r, new_r = Registry(), Registry()
        old_r.histogram("h", lo_exp=0, hi_exp=4).observe(1.0)
        new_r.histogram("h", lo_exp=-4, hi_exp=8).observe(2.0)
        new = new_r.snapshot()
        delta = diff_snapshots(new, old_r.snapshot())
        assert delta["h"]["series"][0] == new["h"]["series"][0]


class TestSnapshotAsymmetry:
    def test_added_and_removed_series_reported(self):
        old_r, new_r = Registry(), Registry()
        old_r.counter("gone_total").inc(1)
        old_r.counter("stays_total").inc(1)
        new_r.counter("stays_total").inc(2)
        new_r.counter("fresh_total", "", stage="scan").inc(3)
        out = snapshot_asymmetry(new_r.snapshot(), old_r.snapshot())
        assert out["added"] == ['fresh_total{stage="scan"}']
        assert out["removed"] == ["gone_total"]

    def test_label_sets_are_distinct_series(self):
        old_r, new_r = Registry(), Registry()
        old_r.counter("c_total", "", shard="0").inc(1)
        new_r.counter("c_total", "", shard="1").inc(1)
        out = snapshot_asymmetry(new_r.snapshot(), old_r.snapshot())
        assert out["added"] == ['c_total{shard="1"}']
        assert out["removed"] == ['c_total{shard="0"}']

    def test_identical_snapshots_are_symmetric(self):
        r = Registry()
        r.counter("c_total").inc(1)
        snap = r.snapshot()
        assert snapshot_asymmetry(snap, snap) == {
            "added": [], "removed": []}

    def test_none_old_counts_everything_added(self):
        r = Registry()
        r.counter("c_total").inc(1)
        out = snapshot_asymmetry(r.snapshot(), None)
        assert out["added"] == ["c_total"]
        assert out["removed"] == []


class TestNullRegistry:
    def test_all_handles_are_noops(self):
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(5)
        NULL_REGISTRY.histogram("h").observe_many([1, 2])
        assert NULL_REGISTRY.snapshot() == {}

    def test_merge_is_noop(self):
        r = Registry()
        r.counter("c_total").inc(1)
        NULL_REGISTRY.merge(r.snapshot())
        assert NULL_REGISTRY.snapshot() == {}
