"""Tests for volatile-field masking."""

from repro.templates import MASK, make_masker, mask_message, template_tokens


class TestMasking:
    def test_cray_node_id(self):
        assert mask_message("link down on c4-2c0s0n2 port") == "link down on * port"

    def test_hex(self):
        assert mask_message("magic value 0x6969 bad") == "magic value * bad"

    def test_path(self):
        assert mask_message("mount /global/scratch failed") == "mount * failed"

    def test_numbers(self):
        assert mask_message("retry 5 of 10") == "retry * of *"

    def test_paper_example_p1(self):
        msg = (
            "DVS: verify filesystem: file system magic value 0x6969 retrieved "
            "from server c4-2c0s0n2 for /global/scratch does not match "
            "expected value 0x47504653: excluding server"
        )
        masked = mask_message(msg)
        assert masked.startswith("DVS: verify filesystem:")
        assert "0x6969" not in masked and "c4-2c0s0n2" not in masked
        assert "/global/scratch" not in masked

    def test_pci_address(self):
        masked = mask_message("pcieport 0000:00:03.0: [12] Replay Timer Timeout")
        assert "0000:00:03.0" not in masked
        assert masked.endswith("Replay Timer Timeout")

    def test_adjacent_masks_collapse(self):
        assert mask_message("a 1 2 3 b") == "a * b"

    def test_stable_text_unchanged(self):
        msg = "Lnet: critical hardware error:"
        assert mask_message(msg) == msg

    def test_idempotent(self):
        msg = "error 42 at c0-0c1s2n3 addr 0xdead"
        once = mask_message(msg)
        assert mask_message(once) == once

    def test_ip_and_port(self):
        assert mask_message("connect 10.1.2.3:5000 refused") == "connect * refused"

    def test_durations(self):
        assert mask_message("timed out after 30 secs total") == "timed out after * total"


class TestHelpers:
    def test_template_tokens(self):
        assert template_tokens(f"a {MASK} b {MASK}") == ["a", "b"]

    def test_make_masker_extra_rule(self):
        mask = make_masker([("bgp_loc", r"R\d{2}-M\d-N\d{2}")])
        assert mask("node R01-M0-N04 halted") == "node * halted"

    def test_make_masker_defaults_still_apply(self):
        mask = make_masker([])
        assert mask("value 0xff") == "value *"
