"""Differential equivalence: merged tagged-DFA scanner vs per-template.

The merged scanner (one alphabet-compressed table walk for the whole
catalog) must be observationally identical to trialing every template
one at a time with longest-match + lowest-token semantics:

* **token ids** — ``tokenize`` agrees line-for-line;
* **match spans** — ``match_span`` returns the same (token, end);
* **discard decisions** — a line is rejected by one iff by the other;

over all four platform catalogs and under a seeded random-template
property test that stresses overlap, shared prefixes, and tie-breaks.
The compiled-artifact cache rides the same contract: a scanner rebuilt
from cached tables must be indistinguishable from a cold compile.
"""

import random

import pytest

from repro import persistence
from repro.logsim import HPC1, HPC2, HPC3, HPC4, ClusterLogGenerator
from repro.templates import NaiveTemplateScanner, TemplateStore
from repro.templates.masking import MASK

PLATFORMS = [("HPC1", HPC1), ("HPC2", HPC2), ("HPC3", HPC3), ("HPC4", HPC4)]


def probe_messages(store, seed=0):
    """Matching, near-matching, and garbage probes for every template."""
    rng = random.Random(seed)
    fills = ["", "x", "17", "node c0-0c1s2n3", "0x" + "f" * 40, "* ? ["]
    probes = []
    for template in store:
        text = template.text
        for fill in fills:
            probes.append(text.replace(MASK, fill))
        solid = text.replace(MASK, "v")
        # Truncations exercise longest-match/prefix handling.
        probes.append(solid[: max(1, len(solid) // 2)])
        probes.append(solid[:-1])
        probes.append(solid + " trailing tail")
        # A corrupted head must be rejected by both scanners.
        probes.append("~" + solid)
        if len(solid) > 3:
            flip = rng.randrange(1, len(solid) - 1)
            probes.append(solid[:flip] + "\x01" + solid[flip + 1:])
    probes.extend(["", " ", "completely unrelated chatter", "\x00\x01",
                   "日本語のログ行", "*", ".*"])
    return probes


def assert_scanners_agree(merged, naive, messages):
    for message in messages:
        expected_token, expected_end = naive.match_span(message)
        got_token, got_end = merged.match_span(message)
        assert (got_token, got_end) == (expected_token, expected_end), message
        token = merged.tokenize(message)
        assert token == expected_token, message
        assert (token is None) == (expected_token is None), message


@pytest.mark.parametrize("name,platform", PLATFORMS)
def test_platform_catalogs_differentially_identical(name, platform):
    gen = ClusterLogGenerator(platform, seed=11)
    window = gen.generate_window(duration=1800, n_nodes=12, n_failures=4)
    merged = gen.store.compile_scanner(cache=False)
    naive = NaiveTemplateScanner(gen.store)
    messages = [e.message for e in window.events[:4000]]
    messages += probe_messages(gen.store, seed=hash(name) & 0xFFFF)
    assert_scanners_agree(merged, naive, messages)


@pytest.mark.parametrize("name,platform", PLATFORMS[:2])
def test_keep_restricted_scanner_matches_naive(name, platform):
    gen = ClusterLogGenerator(platform, seed=5)
    keep = gen.chains.token_set
    merged = gen.store.compile_scanner(keep=keep, cache=False)
    naive = NaiveTemplateScanner(gen.store, keep=keep)
    assert_scanners_agree(merged, naive, probe_messages(gen.store, seed=3))


def test_scan_hits_equals_per_line_tokenize():
    gen = ClusterLogGenerator(HPC3, seed=23)
    window = gen.generate_window(duration=1800, n_nodes=8, n_failures=3)
    messages = [e.message for e in window.events[:3000]]
    scanner = gen.store.compile_scanner(cache=False)
    reference = gen.store.compile_scanner(cache=False)
    expected = [
        (i, token)
        for i, token in enumerate(map(reference.tokenize, messages))
        if token is not None
    ]
    assert scanner.scan_hits(messages) == expected


def random_store(rng):
    """A template catalog engineered for collisions: shared heads,
    prefix-of-one-another templates, and inner/trailing wildcards."""
    words = ["alpha", "beta", "link", "fault", "warn", "DVS:", "ec_",
             "node", "retry", "panic"]
    store = TemplateStore()
    for _ in range(rng.randrange(6, 14)):
        n_parts = rng.randrange(1, 4)
        parts = [rng.choice(words) for _ in range(n_parts)]
        text = " ".join(parts)
        if rng.random() < 0.5:
            text += " " + MASK
        if rng.random() < 0.3:
            text = text.replace(" ", f" {MASK} ", 1)
        # Guarantee a non-empty literal head (an all-wildcard template
        # would match the empty string, which LexSpec rejects).
        if text.startswith(MASK):
            text = rng.choice(words) + text
        store.add(text)
        if rng.random() < 0.4:
            # A strict prefix of the same template: tie-break pressure.
            store.add(" ".join(parts[: max(1, n_parts - 1)]))
    return store


@pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
def test_random_templates_property(seed):
    rng = random.Random(seed)
    store = random_store(rng)
    merged = store.compile_scanner(cache=False)
    naive = NaiveTemplateScanner(store)
    probes = probe_messages(store, seed=seed)
    # Random interleavings of template fragments hit overlap cases the
    # per-template probes cannot.
    fragments = [t.text.replace(MASK, "z") for t in store]
    for _ in range(200):
        k = rng.randrange(1, 4)
        sep = rng.choice(["", " ", "  "])
        probes.append(sep.join(rng.choice(fragments) for _ in range(k)))
        frag = rng.choice(fragments)
        cut = rng.randrange(0, len(frag) + 1)
        probes.append(frag[:cut] + rng.choice(["", "q", " *", "alpha"]))
    assert_scanners_agree(merged, naive, probes)


class TestArtifactCacheEquivalence:
    def test_warm_scanner_identical_to_cold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        gen = ClusterLogGenerator(HPC2, seed=13)
        cold = gen.store.compile_scanner()  # compiles, then persists
        assert list(tmp_path.glob("*.json")), "artifact was not persisted"
        warm = gen.store.compile_scanner()  # must load, not compile
        naive = NaiveTemplateScanner(gen.store)
        probes = probe_messages(gen.store, seed=2)
        assert_scanners_agree(warm, naive, probes)
        for message in probes:
            assert warm.tokenize(message) == cold.tokenize(message)

    def test_cache_roundtrip_preserves_tables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        gen = ClusterLogGenerator(HPC1, seed=3)
        spec = gen.store.lex_spec()
        compiled = spec.compile()
        persistence.save_cached_scanner(compiled)
        loaded = persistence.load_cached_scanner(spec)
        assert loaded is not None
        assert loaded.dfa.n_states == compiled.dfa.n_states
        assert loaded.dfa.n_classes == compiled.dfa.n_classes
        assert loaded.dfa.transitions == compiled.dfa.transitions
        assert loaded.dfa.accepts == compiled.dfa.accepts
        assert loaded.dfa.max_match_length == compiled.dfa.max_match_length
        assert [r.name for r in loaded.spec.rules] == [
            r.name for r in compiled.spec.rules]

    def test_template_edit_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        store = TemplateStore()
        store.add("link failed *")
        store.compile_scanner()
        store.add("ec_node_failed *")
        spec = store.lex_spec()
        # The extended catalog digests differently: no stale hit.
        assert persistence.load_cached_scanner(spec) is None
        scanner = store.compile_scanner()
        assert scanner.tokenize("ec_node_failed x") is not None

    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", "off")
        store = TemplateStore()
        store.add("link failed *")
        store.compile_scanner()
        assert persistence.scanner_cache_dir() is None
