"""Native compiled scan kernel: compile/cache/degrade machinery.

The differential answers (token ids, spans, funnel counts) live in
``test_byte_backend_equivalence``; this file covers what is unique to
the ``native`` backend: the compiler probe and its two degradation
levels (no compiler at resolve time, failed compile at build time),
the shared-object artifact cache keyed on source + compiler identity,
the single-flight compile election, and the fused ``scan_records``
entry point's record accounting.
"""

import threading

import pytest

from repro import native, persistence
from repro.codegen import resolve_backend
from repro.core.events import LogEvent
from repro.logsim import HPC1, ClusterLogGenerator
from repro.templates import TemplateStore
from repro.templates.masking import MASK

pytestmark = pytest.mark.skipif(
    not native.native_available(), reason="no C compiler on PATH")


def small_store():
    store = TemplateStore()
    store.add("link failed " + MASK)
    store.add("node " + MASK + " health check failed")
    return store


def record(t, node, message):
    return LogEvent(t, node, message).to_line().encode()


class TestCompilerProbe:
    def test_identity_is_path_and_version(self):
        ident = native.compiler_identity()
        assert ident is not None
        path, version = ident
        assert path and version

    def test_probe_failure_degrades_at_resolve(self, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        monkeypatch.delitem(native._PROBES, "/bin/false", raising=False)
        assert native.compiler_identity() is None
        assert not native.native_available()
        assert resolve_backend("native") == "bytes"
        scanner = small_store().compile_scanner(
            cache=False, backend="native")
        assert scanner.backend == "bytes"
        assert scanner.requested_backend == "native"
        assert scanner.tokenize(b"link failed x") is not None

    def test_missing_compiler_path_degrades(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.delitem(native._PROBES, "/nonexistent/cc", raising=False)
        assert not native.native_available()
        assert resolve_backend("native") == "bytes"

    def test_probe_rechecks_when_cc_repointed(self, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        monkeypatch.delitem(native._PROBES, "/bin/false", raising=False)
        assert not native.native_available()
        monkeypatch.delenv("CC")
        assert native.native_available()


class TestCompileFailure:
    def test_failed_compile_degrades_to_bytes(self, monkeypatch, tmp_path):
        # /usr/bin/true answers --version with rc 0 (the probe passes)
        # but produces no shared object: the degradation must happen at
        # the deeper, compile-time level and still land on bytes.
        monkeypatch.setenv("CC", "/usr/bin/true")
        monkeypatch.delitem(native._PROBES, "/usr/bin/true", raising=False)
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        assert native.native_available()
        assert resolve_backend("native") == "native"
        scanner = small_store().compile_scanner(backend="native")
        assert scanner.backend == "bytes"
        assert scanner.requested_backend == "native"
        assert scanner.tokenize(b"link failed x") is not None
        assert not list(tmp_path.glob("*.so"))

    def test_compile_failure_leaves_no_lock_behind(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.setenv("CC", "/usr/bin/true")
        monkeypatch.delitem(native._PROBES, "/usr/bin/true", raising=False)
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        assert native.compile_kernel_library("int x;") is None
        assert not list(tmp_path.glob(".*.lock"))


class TestArtifactCache:
    def test_digest_covers_source_and_compiler(self):
        a = native.native_source_digest("int a;", "/usr/bin/cc", "cc 12")
        assert a != native.native_source_digest("int b;", "/usr/bin/cc",
                                                "cc 12")
        assert a != native.native_source_digest("int a;", "/usr/bin/gcc",
                                                "cc 12")
        assert a != native.native_source_digest("int a;", "/usr/bin/cc",
                                                "cc 13")

    def test_shared_object_cached_and_reused(self, monkeypatch, tmp_path):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        monkeypatch.setattr(native, "_LOADED", {})
        cold = small_store().compile_scanner(backend="native")
        assert cold.backend == "native"
        objects = list(tmp_path.glob("native-*.so"))
        assert len(objects) == 1
        stamp = objects[0].stat().st_mtime_ns
        monkeypatch.setattr(native, "_LOADED", {})
        warm = small_store().compile_scanner(backend="native")
        assert warm.backend == "native"
        # Same digest, no recompile: the object file was only loaded.
        assert [p.stat().st_mtime_ns for p in tmp_path.glob("native-*.so")] \
            == [stamp]
        probes = [b"link failed x", b"nothing here", b""]
        assert [warm.tokenize(b) for b in probes] == \
            [cold.tokenize(b) for b in probes]

    def test_cache_disabled_still_compiles(self, monkeypatch, tmp_path):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", "off")
        monkeypatch.setattr(native, "_LOADED", {})
        scanner = small_store().compile_scanner(backend="native")
        assert scanner.backend == "native"
        assert not list(tmp_path.iterdir())


class TestSingleFlight:
    def test_concurrent_builds_elect_one(self, tmp_path):
        builds = []
        barrier = threading.Barrier(8)

        def build(tmp):
            builds.append(tmp)
            tmp.write_text("artifact")
            return True

        paths = []

        def worker():
            barrier.wait()
            paths.append(persistence.single_flight(
                tmp_path, "artifact.bin", build))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert paths == [tmp_path / "artifact.bin"] * 8
        assert (tmp_path / "artifact.bin").read_text() == "artifact"
        assert not list(tmp_path.glob(".*"))  # no locks or temps left

    def test_failed_build_returns_none_and_unlocks(self, tmp_path):
        assert persistence.single_flight(
            tmp_path, "bad.bin", lambda tmp: False) is None
        assert not list(tmp_path.iterdir())
        # The lock is gone, so a later successful build goes through.
        assert persistence.single_flight(
            tmp_path, "bad.bin",
            lambda tmp: tmp.write_text("ok") or True) is not None

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        import os

        lock = tmp_path / ".artifact.bin.lock"
        lock.write_text("")
        old = lock.stat().st_mtime - 3600
        os.utime(lock, (old, old))
        path = persistence.single_flight(
            tmp_path, "artifact.bin",
            lambda tmp: tmp.write_text("fresh") or True,
            timeout_s=5.0, stale_s=60.0)
        assert path is not None and path.read_text() == "fresh"

    def test_wedged_lock_times_out_to_private_build(self, tmp_path):
        lock = tmp_path / ".artifact.bin.lock"
        lock.write_text("")  # fresh lock nobody will ever release
        path = persistence.single_flight(
            tmp_path, "artifact.bin",
            lambda tmp: tmp.write_text("solo") or True,
            timeout_s=0.2, stale_s=3600.0)
        assert path is not None and path.read_text() == "solo"


class TestScanRecords:
    @pytest.fixture(scope="class")
    def scanner(self):
        gen = ClusterLogGenerator(HPC1, seed=11)
        return gen.store.compile_scanner(
            counting=True, cache=False, backend="native"), gen

    def test_record_accounting(self, scanner):
        s, gen = scanner
        if s.backend != "native":
            pytest.skip("native kernels did not build")
        window = gen.generate_window(duration=600.0, n_nodes=8, n_failures=3)
        good = [e.to_line().encode() for e in window.events[:200]]
        blob = (b"\n\n" + good[0] + b"\r\n" + b"not a record\n"
                + b"\n".join(good[1:]) + b"\n")
        n_records, n_ok, items, last = s.scan_records(blob)
        assert n_records == len(good) + 1  # the malformed one counts
        assert n_ok == len(good)
        suspects = [it for it in items if it[2] == native.SUSPECT_RECORD]
        assert len(suspects) == 1
        off, length, _ = suspects[0]
        assert bytes(blob[off:off + length]) == b"not a record"
        # Every emitted hit re-tokenizes to its reported token.
        for off, length, token in items:
            if token == native.SUSPECT_RECORD:
                continue
            message = bytes(blob[off:off + length]).split(b" ", 2)[2]
            assert s.tokenize(message) == token
        last_off, last_len = last
        assert bytes(blob[last_off:last_off + last_len]) == good[-1]

    def test_empty_and_blank_blobs(self, scanner):
        s, _ = scanner
        if s.backend != "native":
            pytest.skip("native kernels did not build")
        assert s.scan_records(b"") == (0, 0, [], None)
        assert s.scan_records(b"\n\r\n\n") == (0, 0, [], None)

    def test_backslash_record_is_suspect(self, scanner):
        # Escape sequences take the Python unescape path, so the C side
        # must flag them rather than scan the raw message.
        s, _ = scanner
        if s.backend != "native":
            pytest.skip("native kernels did not build")
        blob = record(5.0, "n0", "with \\n escape") + b"\n"
        n_records, n_ok, items, _ = s.scan_records(blob)
        assert n_records == 1
        assert [it[2] for it in items] == [native.SUSPECT_RECORD]


class TestFallbackObservability:
    def test_fallback_counter_emitted_on_degradation(self, monkeypatch):
        from repro.obs import (
            SCANNER_BACKEND_FALLBACK,
            SCANNER_BACKEND_INFO,
            Observability,
        )

        monkeypatch.setenv("CC", "/bin/false")
        monkeypatch.delitem(native._PROBES, "/bin/false", raising=False)
        scanner = small_store().compile_scanner(
            counting=True, cache=False, backend="native")
        assert scanner.backend == "bytes"
        obs = Observability()
        obs.record_scanner(scanner, 0)
        obs.record_scanner(scanner, 0)  # idempotent across run folds
        snap = obs.registry.snapshot()
        series = snap[SCANNER_BACKEND_FALLBACK]["series"]
        assert len(series) == 1
        assert series[0]["labels"]["requested"] == "native"
        assert series[0]["labels"]["backend"] == "bytes"
        assert series[0]["value"] == 1
        info = snap[SCANNER_BACKEND_INFO]["series"]
        assert {s["labels"]["backend"] for s in info} == {"bytes"}
        assert obs.scanner_info["fallback"] is True
        assert obs.scanner_info["requested_backend"] == "native"

    def test_no_fallback_series_when_native_builds(self):
        from repro.obs import SCANNER_BACKEND_FALLBACK, Observability

        scanner = small_store().compile_scanner(
            counting=True, cache=False, backend="native")
        if scanner.backend != "native":
            pytest.skip("native kernels did not build")
        obs = Observability()
        obs.record_scanner(scanner, 0)
        snap = obs.registry.snapshot()
        assert SCANNER_BACKEND_FALLBACK not in snap
        assert obs.scanner_info["fallback"] is False


class TestMemoSurface:
    def test_len_and_clear(self):
        scanner = small_store().compile_scanner(cache=False, backend="native")
        if scanner.backend != "native":
            pytest.skip("native kernels did not build")
        scanner.tokenize(b"link failed a")
        scanner.tokenize(b"link failed b")
        assert len(scanner.memo) == 2
        scanner.memo.clear()
        assert len(scanner.memo) == 0
        assert scanner.tokenize(b"link failed a") is not None
