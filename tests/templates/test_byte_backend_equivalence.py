"""Differential equivalence: byte/numpy/native backends vs the str kernel.

The byte-alphabet kernels (the numpy lockstep sweep and the compiled C
walk both ride on them) must be observationally identical to the
established str translate walk — token ids, match spans, batched hits,
and the funnel counters — over all four platform catalogs, under the
seeded random-template property suite, and on corrupted streams
containing invalid UTF-8.  The compiled-artifact cache must key on the
backend (a str artifact must never satisfy a bytes probe, and vice
versa), ``"numpy"`` must degrade to ``"bytes"`` when numpy is absent,
and ``"native"`` must degrade the same way without a C compiler.
"""

import random

import pytest

from repro import codegen, persistence
from repro.codegen import (
    SCAN_BACKENDS,
    native_available,
    numpy_available,
    resolve_backend,
)
from repro.logsim import HPC1, HPC2, HPC3, HPC4, ClusterLogGenerator
from repro.regexlib.dfa import TranslateTable
from repro.templates import TemplateStore
from repro.templates.masking import MASK

from test_merged_scanner_equivalence import probe_messages, random_store

PLATFORMS = [("HPC1", HPC1), ("HPC2", HPC2), ("HPC3", HPC3), ("HPC4", HPC4)]
# "numpy" and "native" degrade to "bytes" when their prerequisite is
# missing, so the differential holds either way — the equality just
# becomes (vacuously) bytes-vs-bytes on a stripped machine.
BYTE_BACKENDS = ("bytes", "numpy", "native")


def encode(messages):
    return [m.encode("utf-8", "replace") for m in messages]


def fresh_scanner(store, backend, keep=None):
    return store.compile_scanner(
        keep=keep, counting=True, cache=False, backend=backend)


def platform_probes(platform, seed):
    gen = ClusterLogGenerator(platform, seed=seed)
    window = gen.generate_window(duration=1200.0, n_nodes=16, n_failures=5)
    messages = [e.message for e in window.events[:4000]]
    messages += probe_messages(gen.store, seed=seed)
    return gen, messages


class TestBackendDifferential:
    @pytest.mark.parametrize("name,platform", PLATFORMS)
    def test_tokenize_and_counts_agree(self, name, platform):
        gen, messages = platform_probes(platform, seed=17)
        raw = encode(messages)
        s_str = fresh_scanner(gen.store, "str")
        s_byte = fresh_scanner(gen.store, "bytes")
        assert [s_str.tokenize(m) for m in messages] == \
            [s_byte.tokenize(b) for b in raw]
        # Exact byte mode (every platform catalog): the funnel counters
        # are identical stage for stage, not merely consistent.
        assert s_byte.compiled.dfa.byte_alphabet.exact
        assert list(s_str._counts) == list(s_byte._counts)

    @pytest.mark.parametrize("name,platform", PLATFORMS)
    def test_scan_hits_agree_across_all_backends(self, name, platform):
        gen, messages = platform_probes(platform, seed=29)
        raw = encode(messages)
        scanners = {be: fresh_scanner(gen.store, be)
                    for be in ("str",) + BYTE_BACKENDS}
        hits = {"str": scanners["str"].scan_hits(messages)}
        for be in BYTE_BACKENDS:
            hits[be] = scanners[be].scan_hits(raw)
        assert hits["str"] == hits["bytes"] == hits["numpy"] == hits["native"]
        counts = {be: list(s._counts) for be, s in scanners.items()}
        assert counts["str"] == counts["bytes"] == counts["numpy"] \
            == counts["native"]

    @pytest.mark.parametrize("name,platform", PLATFORMS[:2])
    def test_match_span_agrees(self, name, platform):
        gen, messages = platform_probes(platform, seed=31)
        s_str = fresh_scanner(gen.store, "str")
        s_byte = fresh_scanner(gen.store, "bytes")
        s_nat = fresh_scanner(gen.store, "native")
        for m in messages[:2500]:
            b = m.encode("utf-8", "replace")
            # Platform catalogs are pure ASCII, so the byte span's byte
            # offset and the str span's char offset coincide.
            assert s_byte.match_span(b) == s_str.match_span(m), m
            assert s_nat.match_span(b) == s_str.match_span(m), m

    @pytest.mark.parametrize("seed", [1, 7, 42, 1234, 99991])
    def test_random_templates_property(self, seed):
        rng = random.Random(seed)
        store = random_store(rng)
        probes = probe_messages(store, seed=seed)
        fragments = [t.text.replace(MASK, "z") for t in store]
        for _ in range(150):
            k = rng.randrange(1, 4)
            probes.append(" ".join(rng.choice(fragments) for _ in range(k)))
            frag = rng.choice(fragments)
            probes.append(frag[: rng.randrange(0, len(frag) + 1)] + "q")
        raw = encode(probes)
        s_str = fresh_scanner(store, "str")
        tokens = [s_str.tokenize(m) for m in probes]
        for be in BYTE_BACKENDS:
            s = fresh_scanner(store, be)
            assert [s.tokenize(b) for b in raw] == tokens, (seed, be)
            s = fresh_scanner(store, be)
            assert s.scan_hits(raw) == [
                (i, t) for i, t in enumerate(tokens) if t is not None]


class TestInvalidUtf8:
    """Raw byte records that do not decode cleanly must tokenize the
    same as the str kernel sees after replace-decoding — corruption is
    quarantined/discarded identically, never mis-tokenized."""

    def garbled(self, gen, seed):
        rng = random.Random(seed)
        window = gen.generate_window(duration=900.0, n_nodes=12,
                                     n_failures=4)
        raw = []
        for e in window.events[:2000]:
            b = bytearray(e.message.encode())
            r = rng.random()
            if r < 0.2 and b:
                b[rng.randrange(len(b))] = rng.choice(
                    [0x80, 0xC3, 0xFE, 0xFF])  # invalid / lone bytes
            elif r < 0.3:
                b = b[: rng.randrange(0, len(b) + 1)]  # truncated record
            elif r < 0.4:
                b += bytes([0xE2, 0x28])  # dangling multi-byte head
            raw.append(bytes(b))
        return raw

    @pytest.mark.parametrize("backend", BYTE_BACKENDS)
    def test_garbled_records_tokenize_like_replace_decode(self, backend):
        gen = ClusterLogGenerator(HPC3, seed=5)
        raw = self.garbled(gen, seed=5)
        decoded = [b.decode("utf-8", "replace") for b in raw]
        s_str = fresh_scanner(gen.store, "str")
        s_b = fresh_scanner(gen.store, backend)
        assert [s_b.tokenize(b) for b in raw] == \
            [s_str.tokenize(m) for m in decoded]
        s_b2 = fresh_scanner(gen.store, backend)
        s_str2 = fresh_scanner(gen.store, "str")
        assert s_b2.scan_hits(raw) == s_str2.scan_hits(decoded)

    def test_fallback_mode_agrees_on_non_ascii_catalog(self):
        # Non-ASCII template literals force the inexact (marker) byte
        # alphabet: flagged lines decode and re-walk the str table.
        # The C walk has no decode path, so "native" silently drops to
        # the byte kernels here — same answers, degraded backend.
        store = TemplateStore()
        store.add("temp sensor " + MASK + " overheat")
        store.add("видео link fault " + MASK)
        store.add("温度 warning " + MASK)
        s_byte = fresh_scanner(store, "bytes")
        assert not s_byte.compiled.dfa.byte_alphabet.exact
        s_nat = fresh_scanner(store, "native")
        assert s_nat.backend == "bytes"
        assert s_nat.requested_backend == "native"
        s_str = fresh_scanner(store, "str")
        probes = ["temp sensor 9 overheat", "видео link fault x",
                  "温度 warning hot", "温度 warning", "unrelated 行",
                  "temp sensor overheat", ""]
        for m in probes:
            b = m.encode()
            assert s_byte.tokenize(b) == s_str.tokenize(m), m
            assert s_byte.match_span(b) == s_str.match_span(m), m
            assert s_nat.tokenize(b) == s_str.tokenize(m), m


class TestBackendResolution:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("simd")

    def test_backends_registry(self):
        assert SCAN_BACKENDS == ("str", "bytes", "numpy", "native")

    def test_numpy_degrades_to_bytes_when_absent(self, monkeypatch):
        monkeypatch.setattr(codegen, "_NUMPY", False)
        assert not numpy_available()
        assert resolve_backend("numpy") == "bytes"
        store = TemplateStore()
        store.add("link failed " + MASK)
        scanner = store.compile_scanner(cache=False, backend="numpy")
        assert scanner.backend == "bytes"
        assert scanner.tokenize(b"link failed x") is not None

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_backend_reports_numpy(self):
        store = TemplateStore()
        store.add("link failed " + MASK)
        scanner = store.compile_scanner(cache=False, backend="numpy")
        assert scanner.backend == "numpy"

    def test_native_degrades_to_bytes_when_no_compiler(self, monkeypatch):
        monkeypatch.setattr(codegen, "native_available", lambda: False)
        assert resolve_backend("native") == "bytes"
        store = TemplateStore()
        store.add("link failed " + MASK)
        scanner = store.compile_scanner(cache=False, backend="native")
        assert scanner.backend == "bytes"
        assert scanner.requested_backend == "native"
        assert scanner.tokenize(b"link failed x") is not None

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    def test_native_backend_reports_native(self):
        store = TemplateStore()
        store.add("link failed " + MASK)
        scanner = store.compile_scanner(cache=False, backend="native")
        assert scanner.backend == "native"
        assert scanner.requested_backend == "native"
        assert scanner.scan_records is not None


class TestArtifactCacheBackendKey:
    def test_backend_in_cache_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        gen = ClusterLogGenerator(HPC2, seed=13)
        spec = gen.store.lex_spec()
        assert persistence.scanner_digest(spec, backend="str") != \
            persistence.scanner_digest(spec, backend="bytes")
        # bytes and numpy share the byte alphabet mode but still key
        # separately on the backend name.
        assert persistence.scanner_digest(spec, backend="bytes") != \
            persistence.scanner_digest(spec, backend="numpy")
        # native shares the byte alphabet mode too, and still keys apart
        # from both of its siblings.
        digests = {persistence.scanner_digest(spec, backend=be)
                   for be in SCAN_BACKENDS}
        assert len(digests) == len(SCAN_BACKENDS)

        gen.store.compile_scanner(backend="bytes")  # cold: persists
        artifacts = list(tmp_path.glob("*.json"))
        assert len(artifacts) == 1
        # A str probe must not hit the bytes artifact.
        assert persistence.load_cached_scanner(spec, backend="str") is None
        assert persistence.load_cached_scanner(spec, backend="bytes") \
            is not None

        gen.store.compile_scanner(backend="str")
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_warm_byte_scanner_identical_to_cold(self, tmp_path, monkeypatch):
        monkeypatch.setenv("AAROHI_SCANNER_CACHE", str(tmp_path))
        gen = ClusterLogGenerator(HPC1, seed=3)
        cold = gen.store.compile_scanner(backend="bytes")
        warm = gen.store.compile_scanner(backend="bytes")
        probes = encode(probe_messages(gen.store, seed=2))
        assert [warm.tokenize(b) for b in probes] == \
            [cold.tokenize(b) for b in probes]
        assert [warm.match_span(b) for b in probes[:400]] == \
            [cold.match_span(b) for b in probes[:400]]


class TestTranslateMemoBound:
    def test_eviction_counter_and_bound(self):
        table = TranslateTable(lambda cp: cp % 5, dead=7, seed={}, capacity=8)
        for cp in range(0x100, 0x100 + 40):
            chr(cp).translate(table)
        assert len(table) <= 8
        assert table.evictions == 40 - 8

    def test_funnel_reports_evictions(self):
        # The wildcard must sit mid-template: a trailing one bounds the
        # memo key to the literal prefix and the walk never translates
        # (or classifies) the varying non-ASCII codepoints at all.
        store = TemplateStore()
        store.add("link failed " + MASK + " x")
        scanner = fresh_scanner(store, "str")
        assert scanner.compiled.dfa.max_match_length is None
        tt = scanner.compiled.dfa.translate_table
        tt.capacity = tt._n_seed + 4
        for cp in range(0x2200, 0x2240):
            scanner.tokenize(f"link failed {chr(cp)} x")
        funnel = scanner.funnel(lines_seen=0x40)
        assert funnel["translate_evictions"] == tt.evictions > 0
