"""Tests for the template store and generated scanners."""

import pytest

from repro.core.events import Severity
from repro.templates import (
    NaiveTemplateScanner,
    TemplateStore,
    template_to_pattern,
)


PAPER_TEMPLATES = [
    ("[Firmware Bug]: powernow k8: *", Severity.ERRONEOUS),
    ("DVS: verify filesystem: *", Severity.UNKNOWN),
    ("DVS: file node down: *", Severity.UNKNOWN),
    ("Lustre: * cannot find peer *", Severity.UNKNOWN),
    ("Lnet: critical hardware error: *", Severity.ERRONEOUS),
    ("cb_node_unavailable: *", Severity.ERRONEOUS),
]


@pytest.fixture
def store():
    s = TemplateStore()
    for text, severity in PAPER_TEMPLATES:
        s.add(text, severity)
    return s


class TestTemplateToPattern:
    def test_plain(self):
        assert template_to_pattern("abc def") == "abc def"

    def test_trailing_wildcard_dropped(self):
        pattern = template_to_pattern("DVS: verify filesystem: *")
        assert pattern == "DVS: verify filesystem:"

    def test_inner_wildcard(self):
        pattern = template_to_pattern("Lustre: * cannot find peer")
        assert pattern == "Lustre: .* cannot find peer"

    def test_metachars_escaped(self):
        pattern = template_to_pattern("[Firmware Bug]: x (y) *")
        assert pattern == r"\[Firmware Bug\]: x \(y\)"


class TestStore:
    def test_registration_assigns_increasing_tokens(self, store):
        tokens = store.tokens()
        assert tokens == sorted(tokens)
        assert len(store) == 6

    def test_idempotent_add(self, store):
        t1 = store.add("DVS: verify filesystem: *")
        t2 = store.lookup("DVS: verify filesystem: *")
        assert t1 is t2
        assert len(store) == 6

    def test_explicit_token(self):
        s = TemplateStore()
        t = s.add("custom phrase", token=500)
        assert t.token == 500
        assert s.get(500).text == "custom phrase"

    def test_token_collision_rejected(self):
        s = TemplateStore()
        s.add("a", token=100)
        with pytest.raises(ValueError):
            s.add("b", token=100)

    def test_add_from_message_masks(self):
        s = TemplateStore()
        t = s.add_from_message("retry 5 of 10 on c0-0c1s2n3")
        assert t.text == "retry * of * on *"

    def test_severity_stored(self, store):
        template = store.lookup("Lnet: critical hardware error: *")
        assert template.severity is Severity.ERRONEOUS

    def test_head(self, store):
        assert store.lookup("Lustre: * cannot find peer *").head == "Lustre:"


class TestScanner:
    def test_tokenizes_paper_phrases(self, store):
        scanner = store.compile_scanner()
        dvs = store.lookup("DVS: verify filesystem: *").token
        msg = (
            "DVS: verify filesystem: file system magic value 0x6969 retrieved "
            "from server c4-2c0s0n2 for /global/scratch does not match "
            "expected value 0x47504653: excluding server"
        )
        assert scanner.tokenize(msg) == dvs

    def test_benign_phrase_discarded(self, store):
        scanner = store.compile_scanner()
        assert scanner.tokenize("pcieport 0000:00:03.0: [12] Replay Timer Timeout") is None

    def test_keep_subset(self, store):
        wanted = store.lookup("DVS: file node down: *").token
        other = store.lookup("DVS: verify filesystem: *").token
        scanner = store.compile_scanner(keep={wanted})
        assert scanner.tokenize("DVS: file node down: server x") == wanted
        assert scanner.tokenize("DVS: verify filesystem: blah") is None
        assert other != wanted

    def test_inner_wildcard_matching(self, store):
        token = store.lookup("Lustre: * cannot find peer *").token
        scanner = store.compile_scanner()
        assert scanner.tokenize("Lustre: 1234:0:ldlm cannot find peer 10.1.2.3") == token

    def test_empty_selection_rejected(self, store):
        with pytest.raises(ValueError):
            store.compile_scanner(keep=set())

    def test_naive_scanner_agrees(self, store):
        fast = store.compile_scanner()
        naive = NaiveTemplateScanner(store)
        messages = [
            "DVS: verify filesystem: whatever",
            "DVS: file node down: x",
            "Lnet: critical hardware error: bus 7",
            "cb_node_unavailable: c0-0c2s0n2",
            "unrelated healthy chatter",
            "Lustre: abc cannot find peer xyz",
        ]
        for msg in messages:
            assert fast.tokenize(msg) == naive.tokenize(msg), msg

    def test_unminimized_scanner_agrees(self, store):
        fast = store.compile_scanner(minimized=True)
        slow = store.compile_scanner(minimized=False)
        for msg in ["DVS: verify filesystem: x", "nothing", "Lnet: critical hardware error: y"]:
            assert fast.tokenize(msg) == slow.tokenize(msg)
