"""Tests for the Drain and Spell online log parsers."""

import pytest

from repro.templates import DrainParser, SpellParser, lcs_length, lcs_sequence


MESSAGES = [
    "DVS: verify filesystem: magic 0x6969 mismatch",
    "DVS: verify filesystem: magic 0x4750 mismatch",
    "DVS: file node down: removing c4-2c0s0n2",
    "DVS: file node down: removing c0-0c1s0n1",
    "Job 12345 started on c1-0c0s2n0",
    "Job 99 started on c0-0c0s0n3",
]


class TestDrain:
    def test_same_event_same_group(self):
        parser = DrainParser()
        ids = parser.parse_stream(MESSAGES)
        assert ids[0] == ids[1]
        assert ids[2] == ids[3]
        assert ids[4] == ids[5]
        assert len({ids[0], ids[2], ids[4]}) == 3

    def test_template_wildcards_variable_fields(self):
        parser = DrainParser()
        parser.parse(MESSAGES[0])
        group = parser.parse(MESSAGES[1])
        assert "<*>" in group.template_text
        assert group.template_text.startswith("DVS: verify filesystem:")

    def test_different_lengths_never_merge(self):
        parser = DrainParser()
        a = parser.parse("alpha beta gamma")
        b = parser.parse("alpha beta")
        assert a.group_id != b.group_id

    def test_counts(self):
        parser = DrainParser()
        parser.parse_stream(MESSAGES[:2])
        assert parser.groups[0].count == 2

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DrainParser(depth=0)

    def test_max_children_overflow_bucket(self):
        parser = DrainParser(depth=1, max_children=2)
        for i in range(5):
            parser.parse(f"head{i} tail tail")
        # No crash; all messages grouped somewhere.
        assert sum(g.count for g in parser.groups) == 5


class TestLCS:
    def test_lcs_length(self):
        assert lcs_length("abcde", "ace") == 3
        assert lcs_length("abc", "xyz") == 0
        assert lcs_length("", "abc") == 0

    def test_lcs_sequence(self):
        assert lcs_sequence(list("abcde"), list("ace")) == list("ace")

    def test_lcs_sequence_is_subsequence(self):
        a = "the quick brown fox".split()
        b = "the slow brown dog".split()
        seq = lcs_sequence(a, b)
        assert seq == ["the", "brown"]


class TestSpell:
    def test_same_event_same_object(self):
        parser = SpellParser()
        ids = parser.parse_stream(MESSAGES)
        assert ids[0] == ids[1]
        assert ids[2] == ids[3]

    def test_key_wildcarded(self):
        parser = SpellParser()
        parser.parse(MESSAGES[0])
        obj = parser.parse(MESSAGES[1])
        assert "<*>" in obj.key_text

    def test_distinct_events_distinct_objects(self):
        parser = SpellParser()
        a = parser.parse("Lnet: critical hardware error: bus 7")
        b = parser.parse("completely different words entirely here")
        assert a.object_id != b.object_id

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            SpellParser(tau=0.0)

    def test_counts_accumulate(self):
        parser = SpellParser()
        for m in MESSAGES[:2]:
            parser.parse(m)
        assert parser.objects[0].count == 2


class TestParsersOnGeneratedLogs:
    def test_drain_recovers_catalog_templates(self):
        """Drain's group count lands near the true template count on a
        generated healthy stream."""
        from repro.logsim import ClusterLogGenerator, HPC3

        gen = ClusterLogGenerator(HPC3, seed=15)
        window = gen.generate_window(duration=1200, n_nodes=12, n_failures=0,
                                     n_spurious=0, benign_rate_hz=0.05)
        parser = DrainParser(sim_threshold=0.4)
        parser.parse_stream([e.message for e in window.events])
        true_templates = len(gen.catalog.benign)
        assert len(parser.groups) <= true_templates * 3
