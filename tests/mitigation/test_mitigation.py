"""Tests for checkpoint economics and mitigation planning."""

import numpy as np
import pytest

from repro.core.events import NodeFailure, Prediction
from repro.core.leadtime import LeadTimeRecord
from repro.mitigation import (
    LAZY_CHECKPOINT,
    PROCESS_MIGRATION,
    QUARANTINE,
    STANDARD_ACTIONS,
    RecoveryAction,
    actions_by_name,
    compute_saved_node_seconds,
    daly_interval,
    plan_mitigation,
    proactive_vs_periodic,
    waste_fraction,
    young_interval,
)


class TestCheckpointModels:
    def test_young_formula(self):
        assert young_interval(60.0, 24 * 3600.0) == pytest.approx(
            np.sqrt(2 * 60.0 * 24 * 3600.0))

    def test_daly_close_to_young_for_small_delta(self):
        y = young_interval(30.0, 86400.0)
        d = daly_interval(30.0, 86400.0)
        assert abs(d - y) / y < 0.1

    def test_daly_degenerate_regime(self):
        assert daly_interval(100.0, 40.0) == 40.0

    def test_shorter_mtbf_shorter_interval(self):
        # The exascale motivation: MTBF minutes → very frequent checkpoints.
        long_m = daly_interval(60.0, 24 * 3600.0)
        short_m = daly_interval(60.0, 600.0)
        assert short_m < long_m

    def test_waste_increases_as_mtbf_drops(self):
        tau = daly_interval(60.0, 3600.0)
        w_good = waste_fraction(tau, 60.0, 24 * 3600.0)
        w_bad = waste_fraction(tau, 60.0, 1800.0)
        assert w_bad > w_good

    def test_waste_bounded(self):
        assert waste_fraction(10.0, 60.0, 30.0) == 1.0

    @pytest.mark.parametrize("bad", [(0, 100), (-1, 100), (10, 0)])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            young_interval(*bad)

    def test_proactive_beats_periodic_with_good_recall(self):
        savings = proactive_vs_periodic(
            checkpoint_cost=120.0,
            mtbf=4 * 3600.0,
            restart_cost=300.0,
            prediction_recall=0.9,
            action_cost=PROCESS_MIGRATION.mean_cost,
        )
        assert savings.proactive_waste < savings.periodic_waste
        assert 0 < savings.waste_reduction < 1

    def test_zero_recall_no_benefit(self):
        savings = proactive_vs_periodic(
            checkpoint_cost=120.0, mtbf=4 * 3600.0, restart_cost=300.0,
            prediction_recall=0.0, action_cost=3.0,
        )
        assert savings.waste_reduction <= 0.2

    def test_recall_validation(self):
        with pytest.raises(ValueError):
            proactive_vs_periodic(
                checkpoint_cost=1, mtbf=10, restart_cost=0,
                prediction_recall=1.5, action_cost=1)


class TestActions:
    def test_standard_actions_ordered_by_cost(self):
        costs = [a.mean_cost for a in STANDARD_ACTIONS]
        assert costs == sorted(costs)

    def test_fits_within(self):
        assert PROCESS_MIGRATION.fits_within(180.0)
        assert not PROCESS_MIGRATION.fits_within(5.0)
        assert PROCESS_MIGRATION.fits_within(5.0, conservative=False)

    def test_paper_claim_3s_migration_fits_2min_lead(self):
        # §IV.2: "In <16 msecs prediction time and >2 mins effective
        # lead time, such proactive solutions become feasible."
        assert PROCESS_MIGRATION.fits_within(120.0)
        assert QUARANTINE.fits_within(120.0)
        assert LAZY_CHECKPOINT.fits_within(120.0)

    def test_sample_cost_positive(self):
        rng = np.random.default_rng(5)
        draws = [PROCESS_MIGRATION.sample_cost(rng) for _ in range(100)]
        assert all(d > 0 for d in draws)

    def test_bad_cost_model_rejected(self):
        with pytest.raises(ValueError):
            RecoveryAction("x", mean_cost=10.0, p99_cost=5.0)

    def test_actions_by_name(self):
        assert actions_by_name()["quarantine"] is QUARANTINE


def _records(leads):
    out = []
    for i, lead in enumerate(leads):
        pred = Prediction(f"n{i}", "FC", flagged_at=0.0, prediction_time=0.001)
        fail = NodeFailure(f"n{i}", time=lead + 0.001)
        out.append(LeadTimeRecord(prediction=pred, failure=fail))
    return out


class TestPlanner:
    def test_feasibility_fractions(self):
        records = _records([200.0, 150.0, 6.0, 60.0])
        plan = plan_mitigation(records)
        by = plan.by_action()
        assert by["quarantine"].feasible == 4
        assert by["process_migration"].feasible == 3
        assert by["lazy_checkpoint"].feasible == 2

    def test_recommended_prefers_thorough_action_at_90pct(self):
        records = _records([200.0] * 10)
        plan = plan_mitigation(records)
        assert plan.recommended == "lazy_checkpoint"

    def test_recommended_falls_back_to_best_fraction(self):
        records = _records([5.0, 4.0, 6.0])
        plan = plan_mitigation(records)
        assert plan.recommended == "quarantine"

    def test_mean_margin(self):
        records = _records([100.0])
        plan = plan_mitigation(records)
        entry = plan.by_action()["process_migration"]
        assert entry.mean_margin == pytest.approx(100.0 - 8.0, abs=0.01)

    def test_compute_saved(self):
        records = _records([200.0, 5.0])
        saved = compute_saved_node_seconds(records, PROCESS_MIGRATION,
                                           rework_per_failure=1000.0)
        assert saved == pytest.approx(1000.0 - 3.1)

    def test_empty_records(self):
        plan = plan_mitigation([])
        assert all(f.feasible == 0 for f in plan.feasibility)
