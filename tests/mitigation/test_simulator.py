"""Tests for the discrete-event mitigation policy simulator."""

import numpy as np
import pytest

from repro.core.events import NodeFailure, Prediction
from repro.mitigation import PROCESS_MIGRATION
from repro.mitigation.simulator import SimConfig, simulate_policies


def failures_every(n, gap=1800.0):
    return [NodeFailure(node=f"n{i}", time=(i + 1) * gap) for i in range(n)]


def perfect_predictions(failures, lead=120.0):
    return [
        Prediction(node=f.node, chain_id="FC", flagged_at=f.time - lead,
                   prediction_time=0.001)
        for f in failures
    ]


@pytest.fixture
def config():
    return SimConfig(duration=86_400.0, n_nodes=64)


class TestSimulator:
    def test_oracle_bounds_everyone(self, config):
        failures = failures_every(20)
        predictions = perfect_predictions(failures[:10])
        report = simulate_policies(config, failures, predictions,
                                   rng=np.random.default_rng(1))
        assert report.outcomes["oracle"].total_lost <= \
               report.outcomes["proactive"].total_lost
        assert report.outcomes["proactive"].total_lost <= \
               report.outcomes["reactive"].total_lost

    def test_full_recall_approaches_oracle(self, config):
        failures = failures_every(20)
        predictions = perfect_predictions(failures)
        report = simulate_policies(config, failures, predictions,
                                   rng=np.random.default_rng(2))
        proactive = report.outcomes["proactive"]
        oracle = report.outcomes["oracle"]
        assert proactive.failures_preempted == 20
        assert proactive.total_lost == pytest.approx(oracle.total_lost)

    def test_no_predictions_equals_reactive(self, config):
        failures = failures_every(15)
        report = simulate_policies(config, failures, [],
                                   rng=np.random.default_rng(3))
        proactive = report.outcomes["proactive"]
        reactive = report.outcomes["reactive"]
        # Identical rng draws are consumed per failure, so equality holds.
        assert proactive.total_lost == pytest.approx(reactive.total_lost)
        assert proactive.failures_preempted == 0

    def test_short_lead_cannot_preempt(self, config):
        failures = failures_every(10)
        # 1-second leads: below the migration p99 budget.
        predictions = perfect_predictions(failures, lead=1.0)
        report = simulate_policies(config, failures, predictions,
                                   action=PROCESS_MIGRATION,
                                   rng=np.random.default_rng(4))
        assert report.outcomes["proactive"].failures_preempted == 0

    def test_saving_fraction(self, config):
        failures = failures_every(30, gap=600.0)
        predictions = perfect_predictions(failures)
        report = simulate_policies(config, failures, predictions,
                                   rng=np.random.default_rng(5))
        saving = report.saving_vs_reactive()
        assert 0.0 < saving <= 1.0
        # With everything pre-empted, most rework is avoided.
        assert saving > 0.3

    def test_interval_uses_mtbf_hint(self, config):
        failures = failures_every(5)
        r1 = simulate_policies(config, failures, [],
                               rng=np.random.default_rng(6))
        hinted = SimConfig(duration=config.duration, n_nodes=config.n_nodes,
                           mtbf_hint=60.0)
        r2 = simulate_policies(hinted, failures, [],
                               rng=np.random.default_rng(6))
        assert r2.interval < r1.interval

    def test_empty_failures(self, config):
        report = simulate_policies(config, [], [],
                                   rng=np.random.default_rng(7))
        assert report.outcomes["reactive"].failures_paid == 0
        assert report.saving_vs_reactive() >= 0.0


class TestEndToEndWithPredictor:
    def test_aarohi_predictions_drive_savings(self):
        from repro.core import PredictorFleet
        from repro.logsim import ClusterLogGenerator, HPC3

        gen = ClusterLogGenerator(HPC3, seed=44)
        window = gen.generate_window(
            duration=14_400.0, n_nodes=40, n_failures=14, n_spurious=0)
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout)
        report = fleet.run(window.events)
        config = SimConfig(duration=14_400.0, n_nodes=40)
        sim = simulate_policies(
            config, window.failures, report.predictions,
            rng=np.random.default_rng(8))
        # Most failures are predictable minutes ahead → real savings.
        assert sim.outcomes["proactive"].failures_preempted >= 8
        assert sim.saving_vs_reactive() > 0.2
