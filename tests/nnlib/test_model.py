"""Tests for the next-token LSTM model."""

import numpy as np
import pytest

from repro.nnlib import NextTokenLSTM
from repro.nnlib.model import _windows


class TestWindows:
    def test_exact_windows(self):
        out = _windows([[1, 2, 3, 4]], window=3)
        assert out == [([1, 2, 3], [2, 3, 4])]

    def test_sliding(self):
        out = _windows([[1, 2, 3, 4, 5]], window=3)
        assert ([1, 2, 3], [2, 3, 4]) in out
        assert ([2, 3, 4], [3, 4, 5]) in out

    def test_padding_short_sequences(self):
        out = _windows([[1, 2], [5, 6, 7, 8]], window=None)
        widths = {len(i) for i, _t in out}
        assert widths == {3}
        padded = [pair for pair in out if pair[0][0] == 1][0]
        assert padded == ([1, 2, 2], [2, 2, 2])

    def test_degenerate_filtered(self):
        assert _windows([[1]], window=None) == []


class TestTraining:
    def test_learns_deterministic_chain(self):
        # One unambiguous sequence: the model must learn each transition.
        chain = [0, 1, 2, 3, 4, 5]
        model = NextTokenLSTM(vocab=6, embed_dim=8, hidden=16, seed=3)
        stats = model.fit([chain], epochs=150, lr=0.01, seed=3)
        assert stats.final_loss < 0.1
        assert stats.losses[0] > stats.final_loss
        states = model.make_states()
        for current, nxt in zip(chain[:-1], chain[1:]):
            top = model.predict_topk(current, states, k=1)
            assert top == [nxt]

    def test_learns_branching_with_topk(self):
        # 0→1 and 0→2 both occur; top-2 after 9,0 must contain both.
        seqs = [[9, 0, 1, 3], [9, 0, 2, 4]] * 3
        model = NextTokenLSTM(vocab=10, embed_dim=8, hidden=16, seed=4)
        model.fit(seqs, epochs=150, lr=0.01, seed=4)
        states = model.make_states()
        model.step_logits(9, states)
        top2 = model.predict_topk(0, states, k=2)
        assert set(top2) == {1, 2}

    def test_sequence_probability_ranks_seen_over_unseen(self):
        seqs = [[0, 1, 2, 3]] * 4
        model = NextTokenLSTM(vocab=6, embed_dim=8, hidden=12, seed=5)
        model.fit(seqs, epochs=120, lr=0.01, seed=5)
        seen = model.sequence_probability([0, 1, 2, 3])
        unseen = model.sequence_probability([0, 3, 1, 5])
        assert seen > unseen

    def test_empty_input_rejected(self):
        model = NextTokenLSTM(vocab=4)
        with pytest.raises(ValueError):
            model.fit([[1]])

    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            NextTokenLSTM(vocab=1)

    def test_n_params_positive_and_scales(self):
        small = NextTokenLSTM(vocab=10, embed_dim=4, hidden=8)
        big = NextTokenLSTM(vocab=10, embed_dim=8, hidden=32, layers=2)
        assert 0 < small.n_params() < big.n_params()

    def test_stateful_step_is_deterministic(self):
        model = NextTokenLSTM(vocab=8, seed=6)
        s1, s2 = model.make_states(), model.make_states()
        a = model.step_logits(3, s1)
        b = model.step_logits(3, s2)
        assert np.allclose(a, b)

    def test_training_reproducible(self):
        seqs = [[0, 1, 2], [2, 1, 0]]
        m1 = NextTokenLSTM(vocab=4, seed=7)
        m2 = NextTokenLSTM(vocab=4, seed=7)
        l1 = m1.fit(seqs, epochs=5, seed=7).losses
        l2 = m2.fit(seqs, epochs=5, seed=7).losses
        assert l1 == l2
