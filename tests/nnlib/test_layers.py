"""Numeric-gradient checks and unit tests for nnlib layers."""

import numpy as np
import pytest

from repro.nnlib import Dense, Embedding, LSTM, cross_entropy, softmax
from repro.nnlib.optim import Adam, SGD, clip_gradients


def numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(4, 7)))
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert (probs > 0).all()

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        targets = np.array([1, 4, 0])
        _, d = cross_entropy(logits, targets)
        num = numeric_grad(lambda: cross_entropy(logits, targets)[0], logits)
        assert np.allclose(d, num, atol=1e-6)


class TestDense:
    def test_forward_shape(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_gradients_numeric(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(2, 4))
        targets = np.array([0, 2])

        def loss_fn():
            return cross_entropy(layer.forward(x), targets)[0]

        layer.zero_grad()
        _, d_logits = cross_entropy(layer.forward(x), targets)
        dx = layer.backward(d_logits)
        assert np.allclose(layer.grads["W"], numeric_grad(loss_fn, layer.params["W"]), atol=1e-6)
        assert np.allclose(layer.grads["b"], numeric_grad(loss_fn, layer.params["b"]), atol=1e-6)
        assert np.allclose(dx, numeric_grad(loss_fn, x), atol=1e-6)

    def test_3d_input(self):
        rng = np.random.default_rng(4)
        layer = Dense(4, 3, rng)
        out = layer.forward(rng.normal(size=(2, 5, 4)))
        assert out.shape == (2, 5, 3)


class TestEmbedding:
    def test_lookup(self):
        rng = np.random.default_rng(5)
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb.forward(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], emb.params["E"][1])

    def test_backward_accumulates_repeats(self):
        rng = np.random.default_rng(6)
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 1]])
        emb.zero_grad()
        emb.forward(ids)
        d = np.ones((1, 2, 4))
        emb.backward(d)
        assert np.allclose(emb.grads["E"][1], 2.0)
        assert np.allclose(emb.grads["E"][0], 0.0)


class TestLSTM:
    def test_forward_shape(self):
        rng = np.random.default_rng(7)
        lstm = LSTM(3, 5, rng)
        out = lstm.forward(rng.normal(size=(2, 4, 3)))
        assert out.shape == (2, 4, 5)

    def test_gradients_numeric(self):
        rng = np.random.default_rng(8)
        lstm = LSTM(3, 4, rng)
        head = Dense(4, 2, rng)
        x = rng.normal(size=(2, 3, 3))
        targets = np.array([[0, 1, 0], [1, 1, 0]])

        def loss_fn():
            return cross_entropy(head.forward(lstm.forward(x)), targets)[0]

        lstm.zero_grad()
        head.zero_grad()
        _, d_logits = cross_entropy(head.forward(lstm.forward(x)), targets)
        dx = lstm.backward(head.backward(d_logits))
        for name in ("Wx", "Wh", "b"):
            num = numeric_grad(loss_fn, lstm.params[name])
            assert np.allclose(lstm.grads[name], num, atol=1e-5), name
        assert np.allclose(dx, numeric_grad(loss_fn, x), atol=1e-5)

    def test_step_matches_forward(self):
        rng = np.random.default_rng(9)
        lstm = LSTM(3, 5, rng)
        x = rng.normal(size=(1, 6, 3))
        hs = lstm.forward(x)
        state = lstm.make_state(1)
        for t in range(6):
            h = lstm.step(x[:, t, :], state)
            assert np.allclose(h, hs[:, t, :], atol=1e-12)

    def test_forget_bias_initialized(self):
        rng = np.random.default_rng(10)
        lstm = LSTM(3, 4, rng)
        assert np.allclose(lstm.params["b"][4:8], 1.0)
        assert np.allclose(lstm.params["b"][:4], 0.0)


class TestOptimizers:
    def _quadratic_layer(self):
        rng = np.random.default_rng(11)
        layer = Dense(2, 1, rng)
        x = rng.normal(size=(32, 2))  # well-conditioned design matrix
        y = x @ np.array([[2.0], [-3.0]]) + 1.0
        return layer, x, y

    def _mse_step(self, layer, x, y):
        layer.zero_grad()
        pred = layer.forward(x)
        d = 2 * (pred - y) / len(x)
        layer.backward(d)
        return float(((pred - y) ** 2).mean())

    def test_sgd_converges(self):
        layer, x, y = self._quadratic_layer()
        opt = SGD([layer], lr=0.05)
        first = self._mse_step(layer, x, y)
        opt.step()
        for _ in range(1500):
            self._mse_step(layer, x, y)
            opt.step()
        final = self._mse_step(layer, x, y)
        assert final < 1e-3 < first

    def test_sgd_momentum_converges(self):
        layer, x, y = self._quadratic_layer()
        opt = SGD([layer], lr=0.02, momentum=0.9)
        for _ in range(300):
            self._mse_step(layer, x, y)
            opt.step()
        assert self._mse_step(layer, x, y) < 1e-3

    def test_adam_converges(self):
        layer, x, y = self._quadratic_layer()
        opt = Adam([layer], lr=0.05)
        for _ in range(400):
            self._mse_step(layer, x, y)
            opt.step()
        assert self._mse_step(layer, x, y) < 1e-3

    def test_clip_gradients(self):
        rng = np.random.default_rng(12)
        layer = Dense(3, 3, rng)
        layer.zero_grad()
        layer.grads["W"] += 100.0
        norm = clip_gradients([layer], max_norm=1.0)
        assert norm > 1.0
        total = float(sum((g * g).sum() for g in layer.grads.values()))
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)
