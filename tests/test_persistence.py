"""Tests for JSON model bundles."""

import io
import json

import pytest

from repro.logsim import ClusterLogGenerator, HPC3
from repro.persistence import (
    BundleError,
    PredictorBundle,
    chains_from_dict,
    chains_to_dict,
    store_from_dict,
    store_to_dict,
)


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=8)


@pytest.fixture(scope="module")
def bundle(gen):
    return PredictorBundle(
        store=gen.store, chains=gen.chains,
        timeout=gen.recommended_timeout, system="HPC3")


class TestStoreRoundtrip:
    def test_roundtrip(self, gen):
        data = store_to_dict(gen.store)
        back = store_from_dict(data)
        assert len(back) == len(gen.store)
        for template in gen.store:
            restored = back.get(template.token)
            assert restored.text == template.text
            assert restored.severity == template.severity

    def test_bad_severity(self):
        with pytest.raises(BundleError):
            store_from_dict(
                {"templates": [{"token": 1, "text": "x", "severity": "Z"}]})


class TestChainsRoundtrip:
    def test_roundtrip(self, gen):
        back = chains_from_dict(chains_to_dict(gen.chains))
        assert [(c.chain_id, c.tokens, c.deltas) for c in back] == \
               [(c.chain_id, c.tokens, c.deltas) for c in gen.chains]

    def test_missing_field(self):
        with pytest.raises(BundleError):
            chains_from_dict({"chains": [{"id": "X"}]})


class TestBundle:
    def test_file_roundtrip(self, bundle, tmp_path):
        path = tmp_path / "bundle.json"
        bundle.save(path)
        loaded = PredictorBundle.load(path)
        assert loaded.system == "HPC3"
        assert loaded.timeout == bundle.timeout
        assert len(loaded.chains) == len(bundle.chains)

    def test_json_is_diffable(self, bundle):
        buffer = io.StringIO()
        bundle.save(buffer)
        data = json.loads(buffer.getvalue())
        assert data["format_version"] == 1
        assert isinstance(data["chains"], list)

    def test_version_check(self, bundle):
        data = bundle.to_dict()
        data["format_version"] = 99
        with pytest.raises(BundleError, match="version"):
            PredictorBundle.from_dict(data)

    def test_dangling_token_rejected(self, bundle, gen):
        data = bundle.to_dict()
        data["chains"].append({"id": "BAD", "tokens": [99999, 99998],
                               "deltas": []})
        with pytest.raises(BundleError, match="absent"):
            PredictorBundle.from_dict(data)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(BundleError, match="JSON"):
            PredictorBundle.load(path)

    def test_loaded_bundle_predicts(self, bundle, gen, tmp_path):
        path = tmp_path / "bundle.json"
        bundle.save(path)
        loaded = PredictorBundle.load(path)
        fleet = loaded.make_fleet()
        window = gen.generate_window(
            duration=1800.0, n_nodes=8, n_failures=2, n_spurious=0)
        report = fleet.run(window.events)
        detectable = sum(
            1 for i in window.injections if i.kind == "detectable")
        assert len(report.predictions) == detectable

    def test_emit_standalone(self, bundle):
        source = bundle.emit_standalone()
        assert "class Predictor" in source
