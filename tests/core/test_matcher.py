"""Tests for the Algorithm 2 rule-checking engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chains import ChainSet, FailureChain
from repro.core.matcher import ChainMatcher, OracleTracker


def chains_fixture():
    return ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )


def run(matcher, tokens, dt=1.0, t0=0.0):
    """Feed tokens at fixed spacing; return matches."""
    out = []
    t = t0
    for tok in tokens:
        m = matcher.feed(tok, t)
        if m:
            out.append(m)
        t += dt
    return out


class TestBasicMatching:
    def test_exact_chain_matches(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [176, 177, 178, 179, 180, 137])
        assert [x.chain_id for x in matches] == ["FC1"]

    def test_second_chain(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        assert [x.chain_id for x in run(m, [172, 177, 178, 193, 137])] == ["FC5"]

    def test_match_times(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        (match,) = run(m, [172, 177, 178, 193, 137], dt=2.0, t0=100.0)
        assert match.start_time == 100.0
        assert match.end_time == 108.0

    def test_irrelevant_tokens_before_start(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [999, 142, 172, 177, 178, 193, 137])
        assert [x.chain_id for x in matches] == ["FC5"]

    def test_skip_mismatches_mid_chain(self):
        # Paper's example: 172 177 178 [4] 193 137 — 4 is skipped.
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [172, 177, 178, 4, 193, 137])
        assert [x.chain_id for x in matches] == ["FC5"]
        assert m.stats.skipped == 1

    def test_no_match_partial(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        assert run(m, [176, 177, 178]) == []
        assert m.active_chain == "FC1"
        assert m.position == 3

    def test_back_to_back_matches(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        seq = [172, 177, 178, 193, 137, 176, 177, 178, 179, 180, 137]
        matches = run(m, seq)
        assert [x.chain_id for x in matches] == ["FC5", "FC1"]

    def test_reset_clears_state(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [176, 177])
        m.reset()
        assert m.active_chain is None
        assert [x.chain_id for x in run(m, [172, 177, 178, 193, 137])] == ["FC5"]


class TestTimeout:
    def test_timeout_resets(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(177, 5.0)
        # 60s gap exceeds timeout: chain abandoned.
        m.feed(178, 65.0)
        assert m.active_chain is None
        assert m.stats.resets_timeout == 1

    def test_timeout_restarts_at_current_token(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        # Gap violation, but the late token itself starts FC5.
        m.feed(172, 100.0)
        assert m.active_chain == "FC5"

    def test_skips_do_not_refresh_clock(self):
        # Time anchor is the last *matched* token, not the last skip.
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(999, 9.0)  # skip (within window)... wait, 999 irrelevant
        m.feed(4, 9.0)  # skip
        m.feed(177, 11.0)  # 11s after 176 > timeout → reset
        assert m.active_chain is None

    def test_boundary_exact_timeout_ok(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(177, 10.0)  # exactly at the limit: allowed (≤)
        assert m.position == 2

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            ChainMatcher(chains_fixture(), timeout=0)


class TestNegativeDeltaT:
    """Satellite 3: backwards timestamps clamp, never rewind the clock."""

    def test_backwards_time_counts_and_chain_survives(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(172, 100.0)
        m.feed(177, 95.0)  # skewed source: 5s into the past
        assert m.stats.negative_dt == 1
        assert m.position == 2  # clamped ΔT=0 passes the timeout check
        matches = run(m, [178, 193, 137], t0=101.0)
        assert [x.chain_id for x in matches] == ["FC5"]

    def test_clock_never_rewinds(self):
        # The old bug: feed(t=90) after feed(t=100) rewound _last_time
        # to 90, so a token at t=100+timeout later looked in-window
        # relative to the rewound clock.
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(172, 100.0)
        m.feed(177, 90.0)  # clamped; anchor stays 100.0
        m.feed(178, 111.0)  # 11s after the anchor → timeout
        assert m.active_chain is None
        assert m.stats.resets_timeout == 1

    def test_forward_time_not_counted(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [172, 177, 178, 193, 137])
        assert m.stats.negative_dt == 0

    def test_activation_uses_raw_time(self):
        # The clamp applies only while a chain is active: a fresh
        # activation anchors at the event's own (possibly old) time.
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(172, 100.0)
        m.feed(137, 100.5)  # 137 completes nothing here; stays active
        m.reset()
        m.feed(172, 50.0)  # re-activation in the past is fine
        assert m.active_chain == "FC5"
        assert m.stats.negative_dt == 0

    def test_oracle_clamps_identically(self):
        oracle = OracleTracker(chains_fixture(), timeout=10)
        oracle.feed(172, 100.0)
        out = oracle.feed(177, 95.0)
        assert out == []
        assert oracle.stats.negative_dt == 1
        # Cursor survived the clamp and still completes.
        matches = []
        for i, tok in enumerate([178, 193, 137]):
            matches += oracle.feed(tok, 101.0 + i)
        assert [x.chain_id for x in matches] == ["FC5"]

    def test_oracle_clock_never_rewinds(self):
        oracle = OracleTracker(chains_fixture(), timeout=10)
        oracle.feed(172, 100.0)
        oracle.feed(177, 90.0)  # clamped; cursor anchor stays 100.0
        out = []
        for i, tok in enumerate([178, 193, 137]):
            out += oracle.feed(tok, 111.0 + i)  # > anchor + timeout
        assert out == []  # the cursor timed out against the clamped anchor

    def test_match_end_time_is_clamped_not_backwards(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        m.feed(172, 10.0)
        m.feed(177, 11.0)
        m.feed(178, 12.0)
        m.feed(193, 13.0)
        match = m.feed(137, 5.0)  # final token arrives "before" the rest
        assert match is not None
        assert match.end_time == 13.0  # clamped to the anchor
        assert match.end_time >= match.start_time


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from([176, 177, 178, 179, 180, 137, 172, 193, 999, 4]),
             max_size=30),
    st.lists(st.floats(-5, 5), max_size=30),
)
def test_oracle_supersedes_matcher_under_skew(tokens, jitter):
    """The superset property survives non-monotonic event times."""
    m = ChainMatcher(chains_fixture(), timeout=1000)
    oracle = OracleTracker(chains_fixture(), timeout=1000)
    m_matches, o_matches = [], []
    for i, tok in enumerate(tokens):
        t = float(i) + (jitter[i] if i < len(jitter) else 0.0)
        match = m.feed(tok, t)
        if match:
            m_matches.append(match)
        o_matches += oracle.feed(tok, t)
    o_keys = {(x.chain_id, x.end_time) for x in o_matches}
    for match in m_matches:
        assert (match.chain_id, match.end_time) in o_keys


class TestFirstMatchPolicy:
    def test_first_rule_selected_and_held(self):
        # Once FC1 is active, FC5's start token does not preempt it.
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [176, 172, 177, 178, 179, 180, 137])
        assert [x.chain_id for x in matches] == ["FC1"]
        assert m.stats.interleaved_skips >= 1

    def test_interleaved_tokens_counted(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [176, 193, 177, 178, 179, 180, 137])  # 193 belongs to FC5
        assert m.stats.interleaved_skips == 1

    def test_case1_false_negative_documented(self):
        # Partial FC1 match interleaved with a full FC5 sequence: Aarohi
        # misses FC5 (§III case 1).  The oracle sees it.
        seq = [176, 172, 177, 178, 193, 137]
        m = ChainMatcher(chains_fixture(), timeout=120)
        aarohi_matches = run(m, seq)
        assert aarohi_matches == []  # FC1 never completes; FC5 shadowed

        oracle = OracleTracker(chains_fixture(), timeout=120)
        oracle_matches = []
        for i, tok in enumerate(seq):
            oracle_matches += oracle.feed(tok, float(i))
        assert [x.chain_id for x in oracle_matches] == ["FC5"]


class TestOracleTracker:
    def test_tracks_multiple_rules(self):
        oracle = OracleTracker(chains_fixture(), timeout=120)
        out = []
        for i, tok in enumerate([176, 177, 178, 179, 180, 137]):
            out += oracle.feed(tok, float(i))
        assert [x.chain_id for x in out] == ["FC1"]

    def test_oracle_timeout(self):
        oracle = OracleTracker(chains_fixture(), timeout=5)
        oracle.feed(176, 0.0)
        out = oracle.feed(177, 100.0)
        assert out == []
        # The cursor died; completing the rest finds nothing.
        for i, tok in enumerate([178, 179, 180, 137]):
            out += oracle.feed(tok, 101.0 + i)
        assert out == []


class TestStats:
    def test_counters(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [172, 177, 4, 178, 193, 137])
        s = m.stats
        assert s.fed == 6
        assert s.matches == 1
        assert s.skipped == 1
        assert s.activations == 1
        assert s.advanced == 4  # 177, 178, 193, 137


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from([176, 177, 178, 179, 180, 137, 172, 193, 999, 4]),
             max_size=40)
)
def test_oracle_supersedes_matcher(tokens):
    """Every match Aarohi finds, the oracle finds too (same end time)."""
    m = ChainMatcher(chains_fixture(), timeout=1000)
    oracle = OracleTracker(chains_fixture(), timeout=1000)
    m_matches, o_matches = [], []
    for i, tok in enumerate(tokens):
        match = m.feed(tok, float(i))
        if match:
            m_matches.append(match)
        o_matches += oracle.feed(tok, float(i))
    o_keys = {(x.chain_id, x.end_time) for x in o_matches}
    for match in m_matches:
        assert (match.chain_id, match.end_time) in o_keys
