"""Tests for the Algorithm 2 rule-checking engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chains import ChainSet, FailureChain
from repro.core.matcher import ChainMatcher, OracleTracker


def chains_fixture():
    return ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )


def run(matcher, tokens, dt=1.0, t0=0.0):
    """Feed tokens at fixed spacing; return matches."""
    out = []
    t = t0
    for tok in tokens:
        m = matcher.feed(tok, t)
        if m:
            out.append(m)
        t += dt
    return out


class TestBasicMatching:
    def test_exact_chain_matches(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [176, 177, 178, 179, 180, 137])
        assert [x.chain_id for x in matches] == ["FC1"]

    def test_second_chain(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        assert [x.chain_id for x in run(m, [172, 177, 178, 193, 137])] == ["FC5"]

    def test_match_times(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        (match,) = run(m, [172, 177, 178, 193, 137], dt=2.0, t0=100.0)
        assert match.start_time == 100.0
        assert match.end_time == 108.0

    def test_irrelevant_tokens_before_start(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [999, 142, 172, 177, 178, 193, 137])
        assert [x.chain_id for x in matches] == ["FC5"]

    def test_skip_mismatches_mid_chain(self):
        # Paper's example: 172 177 178 [4] 193 137 — 4 is skipped.
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [172, 177, 178, 4, 193, 137])
        assert [x.chain_id for x in matches] == ["FC5"]
        assert m.stats.skipped == 1

    def test_no_match_partial(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        assert run(m, [176, 177, 178]) == []
        assert m.active_chain == "FC1"
        assert m.position == 3

    def test_back_to_back_matches(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        seq = [172, 177, 178, 193, 137, 176, 177, 178, 179, 180, 137]
        matches = run(m, seq)
        assert [x.chain_id for x in matches] == ["FC5", "FC1"]

    def test_reset_clears_state(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [176, 177])
        m.reset()
        assert m.active_chain is None
        assert [x.chain_id for x in run(m, [172, 177, 178, 193, 137])] == ["FC5"]


class TestTimeout:
    def test_timeout_resets(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(177, 5.0)
        # 60s gap exceeds timeout: chain abandoned.
        m.feed(178, 65.0)
        assert m.active_chain is None
        assert m.stats.resets_timeout == 1

    def test_timeout_restarts_at_current_token(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        # Gap violation, but the late token itself starts FC5.
        m.feed(172, 100.0)
        assert m.active_chain == "FC5"

    def test_skips_do_not_refresh_clock(self):
        # Time anchor is the last *matched* token, not the last skip.
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(999, 9.0)  # skip (within window)... wait, 999 irrelevant
        m.feed(4, 9.0)  # skip
        m.feed(177, 11.0)  # 11s after 176 > timeout → reset
        assert m.active_chain is None

    def test_boundary_exact_timeout_ok(self):
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(176, 0.0)
        m.feed(177, 10.0)  # exactly at the limit: allowed (≤)
        assert m.position == 2

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            ChainMatcher(chains_fixture(), timeout=0)


class TestFirstMatchPolicy:
    def test_first_rule_selected_and_held(self):
        # Once FC1 is active, FC5's start token does not preempt it.
        m = ChainMatcher(chains_fixture(), timeout=120)
        matches = run(m, [176, 172, 177, 178, 179, 180, 137])
        assert [x.chain_id for x in matches] == ["FC1"]
        assert m.stats.interleaved_skips >= 1

    def test_interleaved_tokens_counted(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [176, 193, 177, 178, 179, 180, 137])  # 193 belongs to FC5
        assert m.stats.interleaved_skips == 1

    def test_case1_false_negative_documented(self):
        # Partial FC1 match interleaved with a full FC5 sequence: Aarohi
        # misses FC5 (§III case 1).  The oracle sees it.
        seq = [176, 172, 177, 178, 193, 137]
        m = ChainMatcher(chains_fixture(), timeout=120)
        aarohi_matches = run(m, seq)
        assert aarohi_matches == []  # FC1 never completes; FC5 shadowed

        oracle = OracleTracker(chains_fixture(), timeout=120)
        oracle_matches = []
        for i, tok in enumerate(seq):
            oracle_matches += oracle.feed(tok, float(i))
        assert [x.chain_id for x in oracle_matches] == ["FC5"]


class TestOracleTracker:
    def test_tracks_multiple_rules(self):
        oracle = OracleTracker(chains_fixture(), timeout=120)
        out = []
        for i, tok in enumerate([176, 177, 178, 179, 180, 137]):
            out += oracle.feed(tok, float(i))
        assert [x.chain_id for x in out] == ["FC1"]

    def test_oracle_timeout(self):
        oracle = OracleTracker(chains_fixture(), timeout=5)
        oracle.feed(176, 0.0)
        out = oracle.feed(177, 100.0)
        assert out == []
        # The cursor died; completing the rest finds nothing.
        for i, tok in enumerate([178, 179, 180, 137]):
            out += oracle.feed(tok, 101.0 + i)
        assert out == []


class TestStats:
    def test_counters(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        run(m, [172, 177, 4, 178, 193, 137])
        s = m.stats
        assert s.fed == 6
        assert s.matches == 1
        assert s.skipped == 1
        assert s.activations == 1
        assert s.advanced == 4  # 177, 178, 193, 137


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.sampled_from([176, 177, 178, 179, 180, 137, 172, 193, 999, 4]),
             max_size=40)
)
def test_oracle_supersedes_matcher(tokens):
    """Every match Aarohi finds, the oracle finds too (same end time)."""
    m = ChainMatcher(chains_fixture(), timeout=1000)
    oracle = OracleTracker(chains_fixture(), timeout=1000)
    m_matches, o_matches = [], []
    for i, tok in enumerate(tokens):
        match = m.feed(tok, float(i))
        if match:
            m_matches.append(match)
        o_matches += oracle.feed(tok, float(i))
    o_keys = {(x.chain_id, x.end_time) for x in o_matches}
    for match in m_matches:
        assert (match.chain_id, match.end_time) in o_keys
