"""Live-ingest daemon drills (``repro.core.daemon``).

The acceptance drill for the sharded daemon: stream a corrupted log
over TCP, ``kill -9`` a worker mid-stream, and prove the service is
*transparent* — predictions identical to the batch
:class:`~repro.core.parallel.ParallelFleet` on the same lines, the
ingest funnel identity intact across the takeover, the outage visible
(and then resolved) on ``/healthz`` and the ``aarohi_daemon_*``
series.

Everything here is numpy-free: the bundle is the handmade two-chain
fixture from the state-handoff tests, so the drills also run on the
no-numpy CI leg.  Run just these with ``pytest -m daemon``.
"""

import json
import os
import signal
import socket
import time
import urllib.request

import pytest

from repro.core import ChainSet, FailureChain, LogEvent, ParallelFleet
from repro.core.daemon import FleetDaemon
from repro.core.events import Severity
from repro.obs import Observability, ObsServer
from repro.persistence import PredictorBundle
from repro.templates import TemplateStore

pytestmark = pytest.mark.daemon

CHAIN_TOKENS = {
    "FC1": (176, 177, 178, 179, 180, 137),
    "FC5": (172, 177, 178, 193, 137),
}
WORDS = {
    176: "alpha x", 177: "bravo x", 178: "charlie x", 179: "delta x",
    180: "echo x", 137: "foxtrot x", 172: "golf x", 193: "hotel x",
}


def make_bundle() -> PredictorBundle:
    chains = ChainSet([
        FailureChain(cid, toks) for cid, toks in CHAIN_TOKENS.items()
    ])
    store = TemplateStore()
    for pattern, severity, token in [
        ("alpha *", Severity.ERRONEOUS, 176),
        ("bravo *", Severity.UNKNOWN, 177),
        ("charlie *", Severity.UNKNOWN, 178),
        ("delta *", Severity.UNKNOWN, 179),
        ("echo *", Severity.ERRONEOUS, 180),
        ("foxtrot *", Severity.ERRONEOUS, 137),
        ("golf *", Severity.ERRONEOUS, 172),
        ("hotel *", Severity.UNKNOWN, 193),
    ]:
        store.add(pattern, severity, token=token)
    return PredictorBundle(store=store, chains=chains, timeout=120.0)


def make_lines(nodes, reps=2, t0=1000.0, dt=0.25):
    """Interleaved FC5 walks for every node — ``reps`` completions per
    node, so expected predictions = ``len(nodes) * reps``."""
    lines = []
    t = t0
    for _ in range(reps):
        for tok in CHAIN_TOKENS["FC5"]:
            for node in nodes:
                lines.append(
                    LogEvent(time=t, node=node, message=WORDS[tok]).to_line())
                t += dt
    return lines


def batch_predictions(bundle, lines):
    """The batch ground truth the daemon must reproduce byte-for-byte."""
    fleet = ParallelFleet(bundle, n_workers=2, chunk_lines=16)
    try:
        predictions = fleet.run_lines(list(lines))
    finally:
        fleet.close()
    return pred_keys(predictions)


def pred_keys(predictions):
    return sorted(
        (p.node, p.chain_id, p.flagged_at, p.matched_tokens)
        for p in predictions
    )


def send_all(addr, payload: bytes, chunk=997):
    """Stream a payload in deliberately unaligned chunks, so record
    boundaries land mid-``recv`` like real socket traffic."""
    with socket.create_connection(addr) as sock:
        for i in range(0, len(payload), chunk):
            sock.sendall(payload[i:i + chunk])


def wait_lines(daemon, n, timeout=30.0):
    """Poll until the daemon has accepted ``n`` lines (socket delivery
    is asynchronous; stop() must not race the reader threads)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon.status()["lines_received"] >= n:
            return True
        time.sleep(0.005)
    return False


def http_get(url, timeout=5.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", "replace")


class TestKillMinus9Drill:
    """The headline drill: TCP stream + corruption + worker murder."""

    def test_stream_equals_batch_across_takeover(self):
        bundle = make_bundle()
        nodes = [f"node{i:02d}" for i in range(8)]
        lines = make_lines(nodes, reps=2)
        # Corruption mid-stream: a truncated header and invalid UTF-8.
        lines.insert(7, "truncated line")
        raw_garbage = b"\xfe\xff garbled \x00 record"
        n_shards = 2
        # The drill's stream is deliberately dirty (2 junk lines); a
        # 10% quarantine SLO keeps that gate green so the /healthz dip
        # below isolates the *shard* outage.
        obs = Observability(quarantine_slo=0.10)
        daemon = FleetDaemon(
            bundle, n_shards=n_shards, chunk_lines=8,
            poll_interval=0.02, obs=obs,
        ).start()
        try:
            assert daemon.wait_ready(30.0)
            addr = daemon.listen_tcp()
            with ObsServer(obs) as server:
                status, body = http_get(server.url("/healthz"))
                assert status == 200, body
                assert '"daemon"' in body

                # Phase 1: every node walks 3 of FC5's 5 phrases, so
                # every shard holds mid-chain state when the axe falls.
                boundary = 3 * len(nodes) + 1  # +1: the inserted junk
                head = ("\n".join(lines[:boundary]) + "\n").encode()
                head += raw_garbage + b"\n"
                send_all(addr, head)
                assert wait_lines(daemon, boundary + 1)
                assert daemon.drain(30.0)
                before = daemon.status()
                assert before["ok"] and before["up"] == n_shards

                pid = daemon.worker_pid(0)
                os.kill(pid, signal.SIGKILL)

                # The outage must be *visible*: /healthz dips to 503
                # while the replacement boots...
                deadline = time.monotonic() + 30.0
                dipped = False
                while time.monotonic() < deadline:
                    status, body = http_get(server.url("/healthz"))
                    if status == 503:
                        dipped = True
                        break
                    time.sleep(0.005)
                assert dipped, "healthz never reported the dead shard"
                # ...and recover once the handoff completes.
                deadline = time.monotonic() + 30.0
                recovered = False
                while time.monotonic() < deadline:
                    status, body = http_get(server.url("/healthz"))
                    if status == 200:
                        recovered = True
                        break
                    time.sleep(0.01)
                assert recovered, "healthz never recovered after takeover"

                # Phase 2: the rest of the stream over a fresh
                # connection, through the replacement worker.
                send_all(addr, ("\n".join(lines[boundary:]) + "\n").encode())
                assert wait_lines(daemon, len(lines) + 1)
                report = daemon.stop(drain=True)
        finally:
            if not daemon._stopped:
                daemon.stop(drain=False)

        assert report.drained
        # Byte-identical predictions: daemon-over-TCP == batch fleet on
        # the same decoded lines (replace-decoded, like the workers).
        expected_lines = lines[:]
        expected_lines.insert(
            boundary, raw_garbage.decode("utf-8", "replace"))
        assert pred_keys(report.predictions) == batch_predictions(
            bundle, expected_lines)
        assert len(report.predictions) == len(nodes) * 2

        # Funnel identity holds across the takeover: every line the
        # daemon accepted was either decoded or quarantined.
        ingest = report.ingest
        assert ingest.lines_read == len(expected_lines)
        assert ingest.decoded + ingest.quarantined == ingest.lines_read
        assert ingest.quarantined == 2

        # The handoff restored in-flight chains (every phase-1 node was
        # mid-chain) and the whole episode is on the metrics plane.
        status = daemon.status()
        assert status["worker_deaths"] == 1
        assert status["handoffs"] == 1
        assert status["chains_restored"] >= 1
        text = obs.prometheus()
        assert "aarohi_daemon_worker_deaths_total 1" in text
        assert "aarohi_daemon_handoffs_total 1" in text
        assert "aarohi_daemon_shards_up 2" in text


class TestBackpressure:
    def test_high_water_stalls_ingest_and_bounds_memory(self):
        bundle = make_bundle()
        daemon = FleetDaemon(
            bundle, n_shards=1, chunk_lines=1, window=1,
            high_water_chunks=2, poll_interval=0.02, throttle_s=0.05,
        ).start()
        try:
            assert daemon.wait_ready(30.0)
            lines = make_lines(["node00", "node01"], reps=2)
            max_pending = 0
            for line in lines:
                daemon.submit(line)
                max_pending = max(max_pending, daemon.pending_chunks())
            report = daemon.stop(drain=True)
        finally:
            if not daemon._stopped:
                daemon.stop(drain=False)
        assert report.drained
        status = daemon.status()
        # The slow worker pushed back on the submitter...
        assert status["backpressure_stalls"] >= 1
        # ...and the queue never grew past the high-water mark.
        assert max_pending <= 2
        # Slow, not wrong: nothing was dropped.
        assert status["lines_received"] == len(lines)
        assert pred_keys(report.predictions) == batch_predictions(
            bundle, lines)


class TestUnixSocket:
    def test_unix_stream_matches_batch(self, tmp_path):
        bundle = make_bundle()
        lines = make_lines([f"n{i}" for i in range(4)], reps=1)
        daemon = FleetDaemon(
            bundle, n_shards=2, chunk_lines=4, poll_interval=0.02,
        ).start()
        try:
            assert daemon.wait_ready(30.0)
            path = daemon.listen_unix(tmp_path / "aarohi.sock")
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.connect(path)
                sock.sendall(("\n".join(lines) + "\n").encode())
            assert wait_lines(daemon, len(lines))
            report = daemon.stop(drain=True)
        finally:
            if not daemon._stopped:
                daemon.stop(drain=False)
        assert report.drained
        assert pred_keys(report.predictions) == batch_predictions(
            bundle, lines)
        assert not os.path.exists(path)  # cleaned up on stop


class TestTailRotation:
    def test_tail_survives_logrotate(self, tmp_path):
        bundle = make_bundle()
        lines = make_lines([f"n{i}" for i in range(4)], reps=1)
        half = len(lines) // 2
        target = tmp_path / "cluster.log"
        target.write_text("\n".join(lines[:half]) + "\n")
        daemon = FleetDaemon(
            bundle, n_shards=2, chunk_lines=4, poll_interval=0.02,
        ).start()
        try:
            assert daemon.wait_ready(30.0)
            daemon.tail_file(target, poll=0.02)
            deadline = time.monotonic() + 30.0
            while (daemon.status()["lines_received"] < half
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            # logrotate: rename the live file away, recreate the name.
            target.rename(tmp_path / "cluster.log.1")
            target.write_text("\n".join(lines[half:]) + "\n")
            deadline = time.monotonic() + 30.0
            while (daemon.status()["lines_received"] < len(lines)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            report = daemon.stop(drain=True)
        finally:
            if not daemon._stopped:
                daemon.stop(drain=False)
        status = daemon.status()
        assert status["tail_rotations"] == 1
        assert status["lines_received"] == len(lines)
        assert pred_keys(report.predictions) == batch_predictions(
            bundle, lines)


class TestReorderRepair:
    def test_connection_sort_buffer_repairs_skew(self):
        bundle = make_bundle()
        lines = make_lines([f"n{i}" for i in range(4)], reps=1, dt=1.0)
        # Adjacent-swap skew: displacement of one record (1 s), well
        # inside the 10 s horizon.
        skewed = lines[:]
        for i in range(0, len(skewed) - 1, 2):
            skewed[i], skewed[i + 1] = skewed[i + 1], skewed[i]
        daemon = FleetDaemon(
            bundle, n_shards=2, chunk_lines=4, poll_interval=0.02,
            reorder_horizon=10.0,
        ).start()
        try:
            assert daemon.wait_ready(30.0)
            addr = daemon.listen_tcp()
            send_all(addr, ("\n".join(skewed) + "\n").encode())
            assert wait_lines(daemon, len(skewed))
            report = daemon.stop(drain=True)
        finally:
            if not daemon._stopped:
                daemon.stop(drain=False)
        # The buffer restored time order, so predictions match a batch
        # run over the *clean* stream — and the repairs were counted.
        assert pred_keys(report.predictions) == batch_predictions(
            bundle, lines)
        assert report.ingest.reordered > 0


class TestDaemonValidation:
    def test_rejects_bad_configuration(self):
        bundle = make_bundle()
        with pytest.raises(ValueError, match="shard"):
            FleetDaemon(bundle, n_shards=0)
        with pytest.raises(ValueError, match="high_water"):
            FleetDaemon(bundle, window=8, high_water_chunks=2)
        with pytest.raises(ValueError, match="on_error"):
            FleetDaemon(bundle, on_error="explode")

    def test_status_is_json_serializable(self):
        bundle = make_bundle()
        daemon = FleetDaemon(bundle, n_shards=1, poll_interval=0.02).start()
        try:
            assert daemon.wait_ready(30.0)
            payload = json.dumps(daemon.status())
            assert '"ok": true' in payload
        finally:
            daemon.stop(drain=False)
