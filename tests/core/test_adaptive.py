"""Tests for unsupervised dynamic re-training (AdaptiveFleet)."""

import pytest

from repro.core import ChainSet, FailureChain, LogEvent
from repro.core.adaptive import AdaptiveFleet
from repro.core.events import Severity
from repro.templates import TemplateStore


@pytest.fixture
def store():
    s = TemplateStore()
    s.add("alpha fault *", Severity.ERRONEOUS, token=201)
    s.add("beta warn *", Severity.UNKNOWN, token=202)
    s.add("gamma err *", Severity.ERRONEOUS, token=203)
    s.add("delta glitch *", Severity.UNKNOWN, token=204)
    s.add("epsilon bad *", Severity.ERRONEOUS, token=205)
    s.add("node down *", Severity.ERRONEOUS, token=290)
    return s


@pytest.fixture
def trained_chains():
    return ChainSet([FailureChain("FC_known", (201, 202, 203))])


def make_fleet(store, chains, **kwargs):
    scanner = store.compile_scanner()
    return AdaptiveFleet(
        chains, scanner.tokenize, terminal_tokens={290},
        timeout=300.0, min_support=2, **kwargs)


def episode(node, base, phrases, death=True):
    events = [
        LogEvent(base + 5.0 * i, node, text) for i, text in enumerate(phrases)
    ]
    if death:
        events.append(LogEvent(base + 5.0 * len(phrases) + 60.0, node,
                               "node down unexpectedly"))
    return events


NOVEL = ["delta glitch x", "epsilon bad y"]  # tokens (204, 205): untrained
KNOWN = ["alpha fault a", "beta warn b", "gamma err c"]


class TestAdaptiveFleet:
    def test_known_chain_predicted_no_learning(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        predictions = fleet.run(episode("n1", 0.0, KNOWN))
        assert [p.chain_id for p in predictions] == ["FC_known"]
        assert fleet.adaptations == []

    def test_novel_chain_learned_after_min_support(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        # First unpredicted death: candidate recorded, not yet trained.
        fleet.run(episode("n1", 0.0, NOVEL))
        assert fleet.adaptations == []
        # Second sighting on another node: chain learned, fleet rebuilt.
        fleet.run(episode("n2", 10_000.0, NOVEL))
        assert len(fleet.adaptations) == 1
        learned = fleet.adaptations[0]
        assert learned.tokens == (204, 205)
        # Third occurrence is now *predicted* before the death.
        predictions = fleet.run(episode("n3", 20_000.0, NOVEL))
        assert [p.chain_id for p in predictions] == [learned.chain_id]

    def test_predicted_death_triggers_no_learning(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        fleet.run(episode("n1", 0.0, KNOWN, death=True))
        fleet.run(episode("n2", 9_000.0, KNOWN, death=True))
        assert fleet.adaptations == []

    def test_single_phrase_history_not_learnable(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        for i in range(3):
            fleet.run(episode(f"n{i}", i * 9_000.0, ["delta glitch q"]))
        assert fleet.adaptations == []

    def test_existing_chain_not_relearned(self, store, trained_chains):
        # An unpredicted death whose candidate equals a trained chain
        # (e.g. the flag was suppressed by a timeout) must not duplicate.
        fleet = make_fleet(store, trained_chains)
        # Break the chain with a >timeout gap so no prediction happens,
        # but history still holds all three tokens.
        for n in ("n1", "n2"):
            events = [
                LogEvent(0.0, n, "alpha fault a"),
                LogEvent(1_000.0, n, "beta warn b"),   # timeout breach
                LogEvent(1_005.0, n, "gamma err c"),
                LogEvent(1_100.0, n, "node down zz"),
            ]
            fleet.run(events)
        assert fleet.adaptations == []

    def test_chains_property_reflects_learning(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        fleet.run(episode("n1", 0.0, NOVEL))
        fleet.run(episode("n2", 10_000.0, NOVEL))
        ids = [c.chain_id for c in fleet.chains]
        assert "FC_known" in ids
        assert any(i.startswith("LEARNED") for i in ids)

    def test_history_bounded(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains, history_limit=4)
        for i in range(20):
            fleet.process(LogEvent(float(i), "n1", "delta glitch spam"))
        assert len(fleet._history["n1"]) <= 4

    def test_lookback_limits_candidate(self, store, trained_chains):
        fleet = make_fleet(store, trained_chains)
        for n in ("n1", "n2"):
            events = [
                LogEvent(0.0, n, "alpha fault old"),     # too old
                LogEvent(9_000.0, n, "delta glitch x"),
                LogEvent(9_010.0, n, "epsilon bad y"),
                LogEvent(9_100.0, n, "node down zz"),
            ]
            fleet.run(events)
        assert fleet.adaptations[0].tokens == (204, 205)
