"""Tests for the per-node predictor fleet."""

import pytest

from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
from repro.core.events import Severity
from repro.templates import TemplateStore


@pytest.fixture
def store():
    s = TemplateStore()
    s.add("alpha fault *", Severity.ERRONEOUS, token=301)
    s.add("beta warn *", Severity.UNKNOWN, token=302)
    s.add("gamma err *", Severity.ERRONEOUS, token=303)
    return s


@pytest.fixture
def chains():
    return ChainSet([FailureChain("FC_x", (301, 302, 303))])


def episode(node, base):
    msgs = ["alpha fault a", "beta warn b", "gamma err c"]
    return [LogEvent(base + 2.0 * i, node, m) for i, m in enumerate(msgs)]


class TestFleet:
    def test_per_node_isolation(self, store, chains):
        """Interleaved chains on two nodes both match — a single shared
        matcher would break on the interleaving."""
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        a = episode("node-a", 0.0)
        b = episode("node-b", 1.0)
        stream = sorted(a + b, key=lambda e: e.time)
        report = fleet.run(stream)
        assert sorted(p.node for p in report.predictions) == ["node-a", "node-b"]

    def test_lazy_instantiation(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        assert fleet.nodes == []
        fleet.process(LogEvent(0.0, "n1", "alpha fault q"))
        assert fleet.nodes == ["n1"]

    def test_predictors_share_tokenizer(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        p1 = fleet.predictor_for("a")
        p2 = fleet.predictor_for("b")
        assert p1 is not p2
        assert p1.tokenizer is p2.tokenizer  # shared compiled scanner

    def test_predictor_for_is_stable(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        assert fleet.predictor_for("a") is fleet.predictor_for("a")

    def test_report_aggregates_stats(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        stream = episode("a", 0.0) + [LogEvent(9.0, "a", "benign chatter")]
        report = fleet.run(stream)
        assert report.lines_seen == 4
        assert report.lines_tokenized == 3
        assert report.fc_related_fraction == pytest.approx(0.75)
        assert report.nodes == 1

    def test_lalr_backend_fleet(self, store, chains):
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, backend="lalr")
        report = fleet.run(episode("n", 0.0))
        assert [p.chain_id for p in report.predictions] == ["FC_x"]

    def test_custom_clock_propagates(self, store, chains):
        ticks = iter(range(10_000))
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0,
            clock=lambda: float(next(ticks)))
        report = fleet.run(episode("n", 0.0))
        # Deterministic clock → deterministic integer prediction time.
        assert report.predictions[0].prediction_time == int(
            report.predictions[0].prediction_time)

    def test_empty_report(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        report = fleet.run([])
        assert report.fc_related_fraction == 0.0
        assert report.predictions == []
