"""Chain-state snapshot/restore (the worker-handoff API).

The daemon survives worker death by serializing per-node matcher state
and handing it to the replacement shard.  These tests prove the
contract the handoff depends on: a restored engine is *byte-equivalent*
to the uninterrupted one — the remaining stream produces identical
predictions — and snapshots survive a JSON round trip.
"""

import json

import pytest

from repro.core import (
    AarohiPredictor,
    ChainSet,
    FailureChain,
    LogEvent,
    PredictorFleet,
)
from repro.core.events import Severity
from repro.core.matcher import ChainMatcher
from repro.templates import TemplateStore


def chains_fixture():
    return ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )


@pytest.fixture
def store():
    s = TemplateStore()
    s.add("alpha *", Severity.ERRONEOUS, token=176)
    s.add("bravo *", Severity.UNKNOWN, token=177)
    s.add("charlie *", Severity.UNKNOWN, token=178)
    s.add("delta *", Severity.UNKNOWN, token=179)
    s.add("echo *", Severity.ERRONEOUS, token=180)
    s.add("foxtrot *", Severity.ERRONEOUS, token=137)
    s.add("golf *", Severity.ERRONEOUS, token=172)
    s.add("hotel *", Severity.UNKNOWN, token=193)
    return s


WORDS = {
    176: "alpha x", 177: "bravo x", 178: "charlie x", 179: "delta x",
    180: "echo x", 137: "foxtrot x", 172: "golf x", 193: "hotel x",
}


class TestChainMatcherSnapshot:
    def test_idle_snapshot_is_none(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        assert m.state_snapshot() is None

    def test_mid_chain_round_trip_continues_identically(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        control = ChainMatcher(chains_fixture(), timeout=120)
        prefix = [(172, 0.0), (177, 1.0), (178, 2.0)]
        for tok, t in prefix:
            assert m.feed(tok, t) is None
            assert control.feed(tok, t) is None
        state = json.loads(json.dumps(m.state_snapshot()))
        assert state == {
            "chain": "FC5", "pos": 3, "last_time": 2.0, "start_time": 0.0,
        }
        fresh = ChainMatcher(chains_fixture(), timeout=120)
        fresh.restore_state(state)
        assert fresh.active_chain == "FC5"
        assert fresh.position == 3
        suffix = [(193, 3.0), (137, 4.0)]
        for tok, t in suffix:
            assert fresh.feed(tok, t) == control.feed(tok, t)

    def test_restore_none_resets(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        m.feed(176, 0.0)
        m.restore_state(None)
        assert m.active_chain is None
        assert m.state_snapshot() is None

    def test_restore_preserves_timeout_clock(self):
        # The ΔT window must continue from the snapshot's last-match
        # time, not restart at the takeover.
        m = ChainMatcher(chains_fixture(), timeout=10)
        m.feed(172, 0.0)
        fresh = ChainMatcher(chains_fixture(), timeout=10)
        fresh.restore_state(m.state_snapshot())
        # 11s gap > timeout: the inherited chain must reset.
        assert fresh.feed(177, 11.0) is None
        assert fresh.stats.resets_timeout == 1
        assert fresh.active_chain is None

    def test_unknown_chain_rejected(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        with pytest.raises(ValueError, match="unknown chain"):
            m.restore_state(
                {"chain": "FC9", "pos": 1, "last_time": 0.0, "start_time": 0.0})

    def test_out_of_range_position_rejected(self):
        m = ChainMatcher(chains_fixture(), timeout=120)
        for pos in (0, 5, 7):
            with pytest.raises(ValueError, match="out of range"):
                m.restore_state({
                    "chain": "FC5", "pos": pos,
                    "last_time": 0.0, "start_time": 0.0,
                })


def _events(tokens, node="n1", t0=0.0, dt=1.0):
    return [
        LogEvent(time=t0 + i * dt, node=node, message=WORDS[tok])
        for i, tok in enumerate(tokens)
    ]


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
class TestPredictorSnapshot:
    def test_split_stream_equals_uninterrupted(self, store, backend):
        chains = chains_fixture()
        stream = _events([172, 177, 178, 193, 137, 176, 177, 178, 179, 180, 137])
        control = AarohiPredictor.from_store(chains, store, backend=backend)
        expected = [p for e in stream if (p := control.process(e))]
        assert len(expected) == 2

        for cut in range(len(stream)):
            first = AarohiPredictor.from_store(chains, store, backend=backend)
            got = [p for e in stream[:cut] if (p := first.process(e))]
            state = first.state_snapshot()
            if state is not None:
                state = json.loads(json.dumps(state))  # must survive the wire
            second = AarohiPredictor.from_store(chains, store, backend=backend)
            second.restore_state(state)
            got += [p for e in stream[cut:] if (p := second.process(e))]
            assert [
                (p.node, p.chain_id, p.flagged_at, p.matched_tokens)
                for p in got
            ] == [
                (p.node, p.chain_id, p.flagged_at, p.matched_tokens)
                for p in expected
            ], f"divergence when splitting at event {cut}"

    def test_idle_predictor_snapshot_is_none(self, store, backend):
        predictor = AarohiPredictor.from_store(
            chains_fixture(), store, backend=backend)
        assert predictor.state_snapshot() is None

    def test_backend_mismatch_rejected(self, store, backend):
        other = "lalr" if backend == "matcher" else "matcher"
        donor = AarohiPredictor.from_store(
            chains_fixture(), store, backend=backend)
        donor.process(_events([172])[0])
        receiver = AarohiPredictor.from_store(
            chains_fixture(), store, backend=other)
        with pytest.raises(ValueError, match="backend"):
            receiver.restore_state(donor.state_snapshot())


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
class TestFleetSnapshot:
    def test_only_mid_chain_nodes_ship(self, store, backend):
        chains = chains_fixture()
        fleet = PredictorFleet.from_store(chains, store, backend=backend)
        # n1 completes a chain (idle afterwards); n2 stops mid-chain.
        fleet.run(_events([172, 177, 178, 193, 137], node="n1"))
        fleet.run(_events([176, 177], node="n2"))
        state = fleet.state_snapshot()
        assert state["backend"] == backend
        assert set(state["nodes"]) == {"n2"}

    def test_fleet_handoff_round_trip(self, store, backend):
        chains = chains_fixture()
        head = (
            _events([172, 177], node="n1")
            + _events([176, 177, 178], node="n2", t0=0.5)
        )
        tail = (
            _events([178, 193, 137], node="n1", t0=2.0)
            + _events([179, 180, 137], node="n2", t0=3.5)
        )
        control = PredictorFleet.from_store(chains, store, backend=backend)
        expected = (
            control.run(head).predictions + control.run(tail).predictions
        )
        assert {p.node for p in expected} == {"n1", "n2"}

        first = PredictorFleet.from_store(chains, store, backend=backend)
        got = list(first.run(head).predictions)
        wire = json.loads(json.dumps(first.state_snapshot()))
        second = PredictorFleet.from_store(chains, store, backend=backend)
        assert second.restore_state(wire) == 2
        got += second.run(tail).predictions
        assert [
            (p.node, p.chain_id, p.flagged_at, p.matched_tokens) for p in got
        ] == [
            (p.node, p.chain_id, p.flagged_at, p.matched_tokens)
            for p in expected
        ]

    def test_fleet_backend_mismatch_rejected(self, store, backend):
        other = "lalr" if backend == "matcher" else "matcher"
        fleet = PredictorFleet.from_store(chains_fixture(), store, backend=backend)
        with pytest.raises(ValueError, match="backend"):
            fleet.restore_state({"backend": other, "nodes": {}})
