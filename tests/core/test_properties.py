"""Cross-cutting property tests on randomly generated chain sets.

These pin the core invariants of the whole Phase-2 pipeline under
hypothesis-generated rule sets and streams:

* every trained chain, played cleanly, is predicted by both backends;
* the factored (Table IV) grammar accepts every trained chain;
* matcher and LALR backends agree on arbitrary token streams whenever
  chains have distinct starting phrases;
* the generated standalone module agrees with the library matcher.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import emit_predictor_source, load_predictor
from repro.core import ChainSet, FailureChain, build_chain_tables, build_rules
from repro.core.matcher import ChainMatcher
from repro.parsegen import LRParser


@st.composite
def chain_sets(draw, max_chains=4, max_len=6):
    """Random chain sets with distinct starting tokens (paper §III)."""
    n_chains = draw(st.integers(1, max_chains))
    pool = list(range(100, 140))
    starts = draw(
        st.lists(st.sampled_from(pool), min_size=n_chains,
                 max_size=n_chains, unique=True))
    chains = []
    for i, start in enumerate(starts):
        length = draw(st.integers(2, max_len))
        body_pool = [t for t in pool if t not in starts]
        body = draw(
            st.lists(st.sampled_from(body_pool), min_size=length - 1,
                     max_size=length - 1, unique=True))
        chains.append(FailureChain(f"FC{i}", (start, *body)))
    return ChainSet(chains)


@settings(max_examples=50, deadline=None)
@given(chain_sets())
def test_every_chain_matches_cleanly(chains):
    matcher = ChainMatcher(chains, timeout=1e9)
    t = 0.0
    for chain in chains:
        result = None
        for token in chain.tokens:
            result = matcher.feed(token, t)
            t += 1.0
        assert result is not None and result.chain_id == chain.chain_id


@settings(max_examples=50, deadline=None)
@given(chain_sets())
def test_flat_grammar_accepts_every_chain(chains):
    rule_set = build_rules(chains, factor=False)
    parser = LRParser(build_chain_tables(rule_set))
    for chain in chains:
        tokens = [(str(t), t) for t in chain.tokens]
        assert parser.parse(tokens) == chain.chain_id


@settings(max_examples=50, deadline=None)
@given(chain_sets())
def test_factored_grammar_accepts_every_chain(chains):
    rule_set = build_rules(chains, factor=True)
    parser = LRParser(build_chain_tables(rule_set, factored=True))
    for chain in chains:
        tokens = [(str(t), t) for t in chain.tokens]
        # The factored grammar may generalize (cross products) but must
        # never reject a trained chain.
        parser.parse(tokens)


@settings(max_examples=30, deadline=None)
@given(chain_sets(max_chains=3, max_len=5),
       st.lists(st.integers(100, 139), max_size=30))
def test_matcher_and_generated_module_agree(chains, stream):
    """The codegen'd standalone predictor replays any token stream with
    the same flags as the library matcher."""
    from repro.templates.store import TemplateStore

    store = TemplateStore()
    for token in sorted(set(t for c in chains for t in c.tokens)):
        store.add(f"synthetic phrase {token} *", token=token)

    matcher = ChainMatcher(chains, timeout=1e9)
    module = load_predictor(
        emit_predictor_source(chains, store, timeout=1e9))
    standalone = module.Predictor()

    relevant = chains.token_set
    lib_flags, gen_flags = [], []
    for i, token in enumerate(stream):
        if token not in relevant:
            continue  # the scanner would discard these
        m = matcher.feed(token, float(i))
        if m:
            lib_flags.append((m.chain_id, i))
        c = standalone.feed_token(token, float(i))
        if c:
            gen_flags.append((c, i))
    assert lib_flags == gen_flags


@settings(max_examples=30, deadline=None)
@given(chain_sets(max_chains=3, max_len=5),
       st.lists(st.integers(100, 139), max_size=25))
def test_matcher_never_false_positives(chains, stream):
    """A match implies the chain's tokens appear as a subsequence of the
    stream since activation — Algorithm 2's soundness property."""
    matcher = ChainMatcher(chains, timeout=1e9)
    seen: list[int] = []
    for i, token in enumerate(stream):
        if token not in chains.token_set:
            continue
        seen.append(token)
        m = matcher.feed(token, float(i))
        if m:
            # Verify subsequence property over the consumed stream.
            chain_tokens = list(m.tokens)
            idx = 0
            for s in seen:
                if idx < len(chain_tokens) and s == chain_tokens[idx]:
                    idx += 1
            assert idx == len(chain_tokens), (
                f"matched {m.chain_id} but {chain_tokens} is not a "
                f"subsequence of {seen}")
