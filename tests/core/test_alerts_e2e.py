"""End-to-end alerting drill: a corrupted, deadline-paced stream
against the shipped default ruleset (ISSUE 8).

The acceptance triangle for the history + rules plane:

(a) driving the stream in paced slices, ``/alerts`` shows the
    ``deadline-burn`` rule walk the full declarative lifecycle —
    ``pending`` first (breach observed, ``for:`` hold not yet elapsed),
    then ``firing`` once the hold has been held across wall-clock
    captures;
(b) exactly one ``alert_rule`` flight capsule is dumped — sticky per
    rule id — and its embedded history window covers the pre-firing
    interval (first record at or before ``pending_since``, last record
    at the firing evaluation);
(c) ``obs-report --history`` renders the very capsule the recorder
    wrote, consistent with the records the ring handed it, and
    ``/healthz`` agrees with ``/alerts`` about what is firing.

Run with ``-m corruption``.  Set ``AAROHI_FLIGHT_DIR`` to redirect the
capsule directory (CI uploads it as a workflow artifact on failure).
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core.fleet import PredictorFleet
from repro.logsim import ClusterLogGenerator, CorruptionSpec, corrupt_window, HPC3
from repro.obs import (
    FlightRecorder,
    HistoryRing,
    LiveMonitor,
    Observability,
    ObsServer,
    RuleEngine,
    TRIGGER_ALERT,
    default_ruleset,
    read_capsule,
)
from repro.obs.names import SLO_BURN

pytestmark = pytest.mark.corruption


def fetch_json(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:  # non-2xx still carries JSON
        return err.code, json.loads(err.read().decode("utf-8"))


def alert_row(payload, rule_id):
    (row,) = [r for r in payload["rules"] if r["id"] == rule_id]
    return row


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    """One paced corrupted replay under the default rules, shared by
    all assertions."""
    flight_dir = os.environ.get("AAROHI_FLIGHT_DIR")
    if flight_dir is None:
        flight_dir = tmp_path_factory.mktemp("capsules")
    gen = ClusterLogGenerator(HPC3, seed=61)
    window = gen.generate_window(
        duration=3600.0, n_nodes=16, n_failures=8, n_spurious=2)
    lines, report = corrupt_window(
        window.events, CorruptionSpec.all_kinds(0.02), seed=61)
    assert report.total_faults > 0
    # A vanishingly small deadline budget forces the burn: every timed
    # prediction is over budget, so SLO_BURN exceeds 1.0 on the first
    # slice that predicts, and the declarative deadline-burn rule (the
    # data twin of the old hardcoded trigger) takes over the capsule.
    # The quarantine SLO sits far above the injected corruption rate so
    # the *only* page-worthy anomaly in this drill is the deadline.
    obs = Observability(
        live=LiveMonitor(1e-12),
        quarantine_slo=0.5,
        flight=FlightRecorder(capacity=128, directory=flight_dir),
        history=HistoryRing(interval=0.0),
        rules=RuleEngine(default_ruleset()),
    )
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout, obs=obs)
    # Pace the stream through in slices.  Every slice ends in a history
    # capture + rule evaluation at *wall* time; once /alerts reports
    # the rule pending, sleeping past its ``for: 1.0`` hold lets the
    # next slice's capture promote it to firing.
    n = len(lines)
    bounds = [0, n // 4, n // 2, 3 * n // 4, n]
    slices = [lines[a:b] for a, b in zip(bounds, bounds[1:])]
    states = []
    with ObsServer(obs) as server:
        for i, chunk in enumerate(slices):
            fleet.run_lines(chunk)
            status, payload = fetch_json(server.url("/alerts"))
            assert status == 200
            states.append(alert_row(payload, "deadline-burn")["state"])
            if states[-1] == "pending" and i + 1 < len(slices):
                time.sleep(1.2)
        status, final_alerts = fetch_json(server.url("/alerts"))
        healthz_status, healthz = fetch_json(server.url("/healthz"))
        with urllib.request.urlopen(
                server.url("/debug/history"), timeout=5.0) as resp:
            debug_status = resp.status
            debug_history = resp.read().decode("utf-8")
    return {
        "obs": obs,
        "states": states,
        "alerts": final_alerts,
        "healthz": (healthz_status, healthz),
        "debug_history": (debug_status, debug_history),
        "flight_dir": flight_dir,
    }


class TestAlertLifecycle:
    def test_pending_observed_before_firing(self, drill):
        states = drill["states"]
        assert "pending" in states, states
        assert "firing" in states, states
        assert states.index("pending") < states.index("firing"), states
        assert states[-1] == "firing", states

    def test_alerts_payload_carries_definition_and_since(self, drill):
        row = alert_row(drill["alerts"], "deadline-burn")
        # The declarative definition rides along with the state.
        assert row["series"] == SLO_BURN
        assert row["expr"] == "max_over_time"
        assert row["severity"] == "page"
        assert row["for"] == 1.0
        assert row["state"] == "firing"
        assert row["firing_since"] >= row["pending_since"] + 1.0
        assert drill["alerts"]["firing"] == ["deadline-burn"]

    def test_only_the_deadline_rule_fired(self, drill):
        rows = {r["id"]: r["state"] for r in drill["alerts"]["rules"]}
        assert rows["deadline-burn"] == "firing"
        # High quarantine SLO, no drift detector, predictions flowing:
        # the other three shipped rules never fire.
        assert rows["quarantine-burn"] in ("inactive", "pending")
        assert rows["discard-drift"] == "inactive"
        assert rows["prediction-absence"] != "firing"

    def test_healthz_agrees_with_alerts(self, drill):
        status, payload = drill["healthz"]
        assert status == 503
        assert payload["status"] == "failing"
        assert payload["alerts"]["firing"] == ["deadline-burn"]


class TestAlertCapsule:
    def test_exactly_one_alert_rule_capsule(self, drill):
        flight = drill["obs"].flight
        assert flight.capsules == 1
        assert list(flight.triggered) == ["alert_rule:deadline-burn"]
        assert flight.last_reason == TRIGGER_ALERT

    def test_capsule_header_names_the_rule(self, drill):
        parsed = read_capsule(drill["obs"].flight.last_capsule_path)
        header = parsed["header"]
        assert header["reason"] == TRIGGER_ALERT
        assert header["rule"] == "deadline-burn"
        assert header["series"] == SLO_BURN
        assert header["severity"] == "page"
        assert header["value"] > header["threshold"] == 1.0

    def test_embedded_history_covers_the_pre_firing_interval(self, drill):
        parsed = read_capsule(drill["obs"].flight.last_capsule_path)
        records = parsed["history"]
        assert records, "the capsule must embed the rule's history"
        assert {r["series"] for r in records} == {SLO_BURN}
        times = [r["t"] for r in records]
        assert times == sorted(times)
        row = alert_row(drill["alerts"], "deadline-burn")
        # The window spans from before the breach was first seen up to
        # the capture that promoted the rule to firing.
        assert times[0] <= row["pending_since"]
        assert times[-1] == pytest.approx(row["firing_since"])
        # And the breach itself is visible in the embedded values.
        assert max(r["value"] for r in records) > 1.0

    def test_alert_buildup_noted_in_capsule_events(self, drill):
        parsed = read_capsule(drill["obs"].flight.last_capsule_path)
        notes = [e for e in parsed["events"] if e["kind"] == "alert"]
        # Transitions are noted before the capsule freezes, so the
        # firing evaluation's own dump shows the full build-up.
        assert [n["state"] for n in notes
                if n["rule"] == "deadline-burn"] == ["pending", "firing"]


class TestReportAndDebugAgreement:
    def test_obs_report_history_renders_the_capsule(self, drill, capsys):
        from repro.cli import main

        path = drill["obs"].flight.last_capsule_path
        assert main(["obs-report", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        records = read_capsule(path)["history"]
        assert f"History trends — {len(records)} points" in out
        assert SLO_BURN in out

    def test_debug_history_serves_the_live_ring(self, drill):
        status, body = drill["debug_history"]
        assert status == 200
        served = [json.loads(line) for line in body.splitlines() if line]
        # The live ring kept capturing after the freeze, so it has at
        # least everything the /alerts summary counted.
        assert len(served) >= 1
        assert drill["alerts"]["history"]["samples"] >= 1
        burn = [r for r in served if r["series"] == SLO_BURN]
        assert burn and max(r["value"] for r in burn) > 1.0
