"""Tests for predictor cost accounting and stats."""

import itertools

import pytest

from repro.core import AarohiPredictor, ChainSet, FailureChain, LogEvent
from repro.templates import TemplateStore


@pytest.fixture
def setup():
    store = TemplateStore()
    store.add("one alpha *", token=401)
    store.add("two beta *", token=402)
    chains = ChainSet([FailureChain("FC", (401, 402))])
    return store, chains


def make_predictor(store, chains, **kwargs):
    counter = itertools.count()
    # Deterministic clock: each call advances 1 ms.
    clock = lambda: next(counter) * 1e-3
    return AarohiPredictor.from_store(
        chains, store, timeout=100.0, clock=clock, **kwargs)


class TestCostAccounting:
    def test_prediction_time_accumulates_over_chain(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        pred = predictor.process(LogEvent(1.0, "n", "two beta y"))
        assert pred is not None
        # Each process(): tokenize (1 tick) + feed (1 tick) = 2 ms; two
        # events → 4 ms accumulated chain cost.
        assert pred.prediction_time == pytest.approx(4e-3)

    def test_benign_scan_cost_counted(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        predictor.process(LogEvent(0.5, "n", "completely benign"))
        pred = predictor.process(LogEvent(1.0, "n", "two beta y"))
        # The benign line's scan tick joins the chain cost (5 ticks).
        assert pred.prediction_time == pytest.approx(5e-3)

    def test_cost_resets_after_prediction(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        first = predictor.process(LogEvent(1.0, "n", "two beta y"))
        predictor.process(LogEvent(10.0, "n", "one alpha x"))
        second = predictor.process(LogEvent(11.0, "n", "two beta y"))
        assert second.prediction_time == pytest.approx(first.prediction_time)

    def test_stats_fields(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        predictor.process(LogEvent(0.5, "n", "noise"))
        predictor.process(LogEvent(1.0, "n", "two beta y"))
        stats = predictor.stats
        assert stats.lines_seen == 3
        assert stats.lines_tokenized == 2
        assert stats.predictions == 1
        assert stats.tokenize_seconds > 0
        assert stats.feed_seconds > 0

    def test_manual_reset_clears_chain_cost(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        predictor.reset()
        predictor.process(LogEvent(10.0, "n", "one alpha x"))
        pred = predictor.process(LogEvent(11.0, "n", "two beta y"))
        assert pred.prediction_time == pytest.approx(4e-3)


class TestSnapshotDiffAdd:
    """The windowed-accounting API (snapshot → work → diff → add) that
    FleetReport and ParallelFleet worker merging are built on."""

    def run_window(self, predictor):
        predictor.process(LogEvent(0.0, "n", "one alpha x"))
        predictor.process(LogEvent(0.5, "n", "noise"))
        predictor.process(LogEvent(1.0, "n", "two beta y"))

    def test_snapshot_is_independent_copy(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        before = predictor.stats.snapshot()
        self.run_window(predictor)
        assert before.lines_seen == 0
        assert predictor.stats.lines_seen == 3

    def test_diff_isolates_one_window(self, setup):
        store, chains = setup
        predictor = make_predictor(store, chains)
        self.run_window(predictor)
        before = predictor.stats.snapshot()
        self.run_window(predictor)
        delta = predictor.stats.diff(before)
        assert delta.lines_seen == 3
        assert delta.lines_tokenized == 2
        assert delta.predictions == 1
        assert delta.tokenize_seconds > 0
        # Cumulative totals unchanged by diffing.
        assert predictor.stats.lines_seen == 6

    def test_add_accumulates_in_place(self, setup):
        from repro.core.predictor import PredictorStats

        store, chains = setup
        total = PredictorStats()
        for _ in range(3):
            predictor = make_predictor(store, chains)
            self.run_window(predictor)
            total.add(predictor.stats.diff(PredictorStats()))
        assert total.lines_seen == 9
        assert total.predictions == 3
        assert total.fc_related_fraction == pytest.approx(6 / 9)
