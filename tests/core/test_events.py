"""Tests for the event model (serialization, lead-time arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import (
    LogDecodeError,
    LogEvent,
    NodeFailure,
    Prediction,
    Severity,
    TokenEvent,
    escape_message,
    unescape_message,
)


class TestLogEvent:
    def test_line_roundtrip(self):
        event = LogEvent(time=1234.567891, node="c0-0c2s0n2",
                         message="DVS: file node down: removing x")
        assert LogEvent.from_line(event.to_line()) == event

    def test_line_format(self):
        event = LogEvent(time=0.0, node="n1", message="hello world")
        line = event.to_line()
        assert line.endswith("n1 hello world")
        assert "1970" in line  # ISO timestamp

    @given(st.floats(0, 4e9), st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=12))
    def test_roundtrip_property(self, t, node):
        event = LogEvent(time=round(t, 6), node=node, message="m s g")
        back = LogEvent.from_line(event.to_line())
        assert back.node == event.node
        assert back.message == event.message
        assert back.time == pytest.approx(event.time, abs=1e-5)

    def test_from_line_requires_three_fields(self):
        with pytest.raises(ValueError):
            LogEvent.from_line("2020-01-01T00:00:00+00:00 onlynode")

    def test_decode_error_carries_reason(self):
        with pytest.raises(LogDecodeError) as excinfo:
            LogEvent.from_line("2020-01-01T00:00:00 onlynode")
        assert excinfo.value.reason == "truncated"
        with pytest.raises(LogDecodeError) as excinfo:
            LogEvent.from_line("yesterday n0 some message")
        assert excinfo.value.reason == "bad_timestamp"

    def test_decode_error_is_value_error(self):
        # Callers catching the pre-hardening ValueError still work.
        assert issubclass(LogDecodeError, ValueError)


class TestMessageEscaping:
    """Satellite 2: embedded newlines must survive the line round-trip."""

    ADVERSARIAL = [
        "panic:\nstack trace line 1\nstack trace line 2",
        "trailing backslash \\",
        "literal \\n not a newline",
        "mixed \\ and \n and \r\n endings",
        "\n",
        "\\",
        "\\\\n",
        "carriage\rreturn",
    ]

    @pytest.mark.parametrize("msg", ADVERSARIAL)
    def test_adversarial_roundtrip(self, msg):
        event = LogEvent(time=12.5, node="c0-0c0s0n0", message=msg)
        line = event.to_line()
        assert "\n" not in line and "\r" not in line  # stays one line
        assert LogEvent.from_line(line) == event

    def test_multiline_message_does_not_corrupt_replay(self):
        import io

        from repro.logsim import read_log, write_log

        events = [
            LogEvent(1.0, "n0", "kernel panic:\nRIP: 0010:do_fault"),
            LogEvent(2.0, "n1", "ordinary message"),
        ]
        buffer = io.StringIO()
        assert write_log(events, buffer) == 2
        buffer.seek(0)
        assert buffer.getvalue().count("\n") == 2  # one line per event
        buffer.seek(0)
        assert list(read_log(buffer, on_error="strict")) == events

    def test_escape_inverse_property_examples(self):
        for msg in self.ADVERSARIAL:
            assert unescape_message(escape_message(msg)) == msg

    @given(st.text(max_size=40))
    def test_escape_inverse_property(self, msg):
        assert unescape_message(escape_message(msg)) == msg

    def test_clean_message_not_rewritten(self):
        # The fast path: no escape characters → to_line emits verbatim.
        event = LogEvent(0.0, "n0", "plain message, no escapes")
        assert event.to_line().endswith("plain message, no escapes")


class TestTokenEvent:
    def test_delta_t(self):
        a = TokenEvent(time=10.0, token=1)
        b = TokenEvent(time=14.5, token=2)
        assert b.delta_t(a) == 4.5

    def test_frozen(self):
        te = TokenEvent(time=1.0, token=5)
        with pytest.raises(AttributeError):
            te.token = 6


class TestPrediction:
    def test_effective_lead_time(self):
        p = Prediction(node="n", chain_id="FC", flagged_at=100.0,
                       prediction_time=0.5)
        assert p.effective_lead_time(160.0) == pytest.approx(59.5)

    def test_negative_lead_possible(self):
        # A flag raised after the failure (late) yields negative lead.
        p = Prediction(node="n", chain_id="FC", flagged_at=200.0,
                       prediction_time=0.0)
        assert p.effective_lead_time(150.0) < 0


class TestSeverity:
    def test_values_match_paper_labels(self):
        assert Severity.ERRONEOUS.value == "E"
        assert Severity.UNKNOWN.value == "U"
        assert Severity.BENIGN.value == "B"


class TestNodeFailure:
    def test_optional_chain(self):
        f = NodeFailure(node="n", time=1.0)
        assert f.chain_id is None
