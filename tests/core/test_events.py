"""Tests for the event model (serialization, lead-time arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import LogEvent, NodeFailure, Prediction, Severity, TokenEvent


class TestLogEvent:
    def test_line_roundtrip(self):
        event = LogEvent(time=1234.567891, node="c0-0c2s0n2",
                         message="DVS: file node down: removing x")
        assert LogEvent.from_line(event.to_line()) == event

    def test_line_format(self):
        event = LogEvent(time=0.0, node="n1", message="hello world")
        line = event.to_line()
        assert line.endswith("n1 hello world")
        assert "1970" in line  # ISO timestamp

    @given(st.floats(0, 4e9), st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=12))
    def test_roundtrip_property(self, t, node):
        event = LogEvent(time=round(t, 6), node=node, message="m s g")
        back = LogEvent.from_line(event.to_line())
        assert back.node == event.node
        assert back.message == event.message
        assert back.time == pytest.approx(event.time, abs=1e-5)

    def test_from_line_requires_three_fields(self):
        with pytest.raises(ValueError):
            LogEvent.from_line("2020-01-01T00:00:00+00:00 onlynode")


class TestTokenEvent:
    def test_delta_t(self):
        a = TokenEvent(time=10.0, token=1)
        b = TokenEvent(time=14.5, token=2)
        assert b.delta_t(a) == 4.5

    def test_frozen(self):
        te = TokenEvent(time=1.0, token=5)
        with pytest.raises(AttributeError):
            te.token = 6


class TestPrediction:
    def test_effective_lead_time(self):
        p = Prediction(node="n", chain_id="FC", flagged_at=100.0,
                       prediction_time=0.5)
        assert p.effective_lead_time(160.0) == pytest.approx(59.5)

    def test_negative_lead_possible(self):
        # A flag raised after the failure (late) yields negative lead.
        p = Prediction(node="n", chain_id="FC", flagged_at=200.0,
                       prediction_time=0.0)
        assert p.effective_lead_time(150.0) < 0


class TestSeverity:
    def test_values_match_paper_labels(self):
        assert Severity.ERRONEOUS.value == "E"
        assert Severity.UNKNOWN.value == "U"
        assert Severity.BENIGN.value == "B"


class TestNodeFailure:
    def test_optional_chain(self):
        f = NodeFailure(node="n", time=1.0)
        assert f.chain_id is None
