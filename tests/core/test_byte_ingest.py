"""Byte-level ingest and the fleet byte hot path.

Covers the zero-copy ingest sources (mmap'd files, binary handles,
socket-style buffers), the ingest equivalence contract against the
text pipeline (quarantine decisions and counts line for line, invalid
UTF-8 included), and the fleet wiring: ``run_lines``/``run_buffer``
over byte records must produce the same predictions, ingest funnel,
and scanner funnel as the decoded str path, serial and parallel.
"""

import io

import pytest

from repro.codegen import native_available, numpy_available
from repro.core import PredictorFleet
from repro.logsim import (
    HPC3,
    ClusterLogGenerator,
    CorruptionSpec,
    IngestStats,
    corrupt_window,
    iter_byte_records,
    read_byte_batch,
    read_log,
    read_record_batch,
    write_log,
)
from repro.persistence import PredictorBundle

BACKENDS = ["str", "bytes"] \
    + (["numpy"] if numpy_available() else []) \
    + (["native"] if native_available() else [])


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=47)


@pytest.fixture(scope="module")
def window(gen):
    return gen.generate_window(
        duration=3600.0, n_nodes=20, n_failures=7, n_spurious=0)


@pytest.fixture(scope="module")
def log_path(window, tmp_path_factory):
    path = tmp_path_factory.mktemp("bytelog") / "window.log"
    with open(path, "w", encoding="utf-8") as fh:
        write_log(window.events, fh)
    return path


def make_fleet(gen, scan_backend):
    return PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        scan_backend=scan_backend)


def line(t, node, message):
    from repro.core.events import LogEvent

    return LogEvent(t, node, message).to_line().encode()


def prediction_keys(predictions):
    # to_line stamps timestamps at the microsecond, so replays through a
    # serialized stream agree with in-memory runs only to ~1e-5 s.
    return [(p.node, p.chain_id, round(p.flagged_at, 4))
            for p in predictions]


class TestByteSources:
    def test_mmap_handle_and_buffer_agree(self, log_path):
        blob = log_path.read_bytes()
        from_path = list(iter_byte_records(log_path))
        from_handle = list(iter_byte_records(io.BytesIO(blob)))
        from_buffer = list(iter_byte_records(blob))
        from_view = list(iter_byte_records(memoryview(blob)))
        assert from_path == from_handle == from_buffer == from_view
        assert all(isinstance(r, bytes) for r in from_view)

    def test_blank_records_and_crlf(self):
        blob = (b"\n\n" + line(1.5, "n0", "hello") + b"\r\n" + b"\r\n"
                + line(2.5, "n0", "world") + b"\n")
        records = list(iter_byte_records(blob))
        assert records == [line(1.5, "n0", "hello") + b"\r", b"\r",
                           line(2.5, "n0", "world")]
        batch = read_record_batch(blob, on_error="quarantine")
        assert batch.messages == [b"hello", b"world"]
        assert batch.times == [1.5, 2.5]

    def test_missing_trailing_newline(self):
        blob = line(1.0, "n0", "alpha") + b"\n" + line(2.0, "n0", "beta")
        batch = read_record_batch(blob)
        assert batch.messages == [b"alpha", b"beta"]

    def test_empty_file_mmap_fallback(self, tmp_path):
        empty = tmp_path / "empty.log"
        empty.write_bytes(b"")
        assert list(iter_byte_records(empty)) == []
        assert len(read_byte_batch(empty)) == 0

    def test_reorder_horizon_sorts_batch(self):
        blob = (line(3.0, "n0", "m3") + b"\n" + line(1.0, "n0", "m1")
                + b"\n" + line(2.0, "n0", "m2") + b"\n")
        stats = IngestStats()
        batch = read_byte_batch(blob, reorder_horizon=5.0, stats=stats)
        assert batch.times == [1.0, 2.0, 3.0]
        assert batch.messages == [b"m1", b"m2", b"m3"]
        assert stats.reordered > 0


class TestIngestEquivalence:
    def test_clean_batch_matches_text_pipeline(self, log_path, window):
        byte_stats, text_stats = IngestStats(), IngestStats()
        batch = read_byte_batch(log_path, stats=byte_stats)
        events = list(read_log(log_path, stats=text_stats))
        assert byte_stats.as_dict() == text_stats.as_dict()
        assert byte_stats.funnel_ok
        decoded = batch.decode_events()
        assert [(e.time, e.node, e.message) for e in decoded] == \
            [(e.time, e.node, e.message) for e in events]
        assert len(decoded) == len(window.events)

    def test_corrupted_batch_quarantines_like_text(self, window):
        lines, report = corrupt_window(
            window.events, CorruptionSpec.all_kinds(0.03), seed=47)
        assert report.total_faults > 0
        blob = "\n".join(lines).encode("utf-8") + b"\n"
        byte_stats, text_stats = IngestStats(), IngestStats()
        batch = read_byte_batch(blob, on_error="quarantine",
                                stats=byte_stats)
        events = list(read_log(
            io.StringIO("\n".join(lines) + "\n"),
            on_error="quarantine", stats=text_stats))
        assert byte_stats.as_dict() == text_stats.as_dict()
        assert byte_stats.quarantined > 0 and byte_stats.funnel_ok
        assert len(batch) == len(events)

    def test_invalid_utf8_quarantines_identically(self):
        # Raw invalid bytes: a lone continuation, a dangling multi-byte
        # head, and an overlong-ish mess inside the header vs payload.
        def stamp(t):
            return line(t, "n0", "x").split(b" ", 1)[0]

        records = [
            line(1.0, "n0", "ok line"),
            b"not-a-time n0 bad header",
            stamp(2.0) + b" n\x80de payload",         # invalid byte in node
            stamp(3.0) + b" n0 pay\xc3load",          # dangling 2-byte head
            stamp(4.0) + b" n0 tail\xe2\x28garbage",  # broken 3-byte seq
            b"\xff\xfe totally binary",
        ]
        blob = b"\n".join(records) + b"\n"
        byte_stats, text_stats = IngestStats(), IngestStats()
        batch = read_record_batch(blob, on_error="quarantine",
                                  stats=byte_stats)
        text = blob.decode("utf-8", "replace")
        events = list(read_log(io.StringIO(text), on_error="quarantine",
                               stats=text_stats))
        assert byte_stats.lines_read == text_stats.lines_read
        assert byte_stats.quarantined == text_stats.quarantined
        assert byte_stats.funnel_ok and text_stats.funnel_ok
        # Surviving payloads decode (replace) to what the text path saw.
        assert [m.decode("utf-8", "replace") for m in batch.messages] == \
            [e.message for e in events]


class TestFleetBytePath:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_lines_matches_str_fleet(self, gen, window, log_path,
                                         backend):
        reference = make_fleet(gen, "str").run(window.events)
        fleet = make_fleet(gen, backend)
        assert fleet.scanner.backend == backend
        report = fleet.run_lines(log_path)
        assert prediction_keys(report.predictions) == \
            prediction_keys(reference.predictions)
        assert report.ingest is not None and report.ingest.funnel_ok
        assert report.ingest.lines_read == len(window.events)

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_run_buffer_matches_run(self, gen, window, backend):
        blob = "\n".join(e.to_line() for e in window.events).encode() + b"\n"
        batch = read_byte_batch(blob, on_error="strict")
        buffered = make_fleet(gen, backend).run_buffer(batch)
        direct = make_fleet(gen, backend).run(window.events)
        assert prediction_keys(buffered.predictions) == \
            prediction_keys(direct.predictions)

    def test_run_buffer_rejects_full_timing(self, gen, window):
        blob = "\n".join(
            e.to_line() for e in window.events[:50]).encode() + b"\n"
        batch = read_byte_batch(blob)
        fleet = make_fleet(gen, "bytes")
        with pytest.raises(ValueError):
            fleet.run_buffer(batch, timing="full")

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_corrupted_stream_predictions_match_str(self, gen, window,
                                                    backend):
        lines, _ = corrupt_window(
            window.events, CorruptionSpec.all_kinds(0.02), seed=7)
        blob = "\n".join(lines).encode("utf-8") + b"\n"
        byte_report = make_fleet(gen, backend).run_lines(
            blob, on_error="quarantine", reorder_horizon=10.0, timing="off")
        str_report = make_fleet(gen, "str").run_lines(
            lines, on_error="quarantine", reorder_horizon=10.0, timing="off")
        assert prediction_keys(byte_report.predictions) == \
            prediction_keys(str_report.predictions)
        assert byte_report.ingest.as_dict() == str_report.ingest.as_dict()

    def test_full_timing_byte_blob_decodes(self, gen, window):
        # timing="full" needs per-event tokenize timing, so a byte blob
        # routes through decode; predictions must still agree.
        blob = "\n".join(
            e.to_line() for e in window.events).encode() + b"\n"
        report = make_fleet(gen, "bytes").run_lines(blob, timing="full")
        reference = make_fleet(gen, "str").run(window.events)
        assert prediction_keys(report.predictions) == \
            prediction_keys(reference.predictions)
        assert report.ingest.lines_read == len(window.events)

    def test_scanner_funnel_identity_through_run_buffer(self, gen, window):
        from repro.obs import FUNNEL_STAGES, LINES_SEEN, Observability

        obs = Observability()
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout,
            scan_backend="bytes", obs=obs)
        blob = "\n".join(e.to_line() for e in window.events).encode() + b"\n"
        fleet.run_buffer(read_byte_batch(blob))
        snap = obs.registry.snapshot()

        def total(name):
            return sum(s["value"] for s in snap[name]["series"])

        lines_seen = total(LINES_SEEN)
        assert lines_seen == len(window.events)
        # run_buffer skips per-node attribution, yet the funnel stages
        # still resolve exactly against the fleet-level line count.
        assert sum(total(name) for name, _ in FUNNEL_STAGES) == lines_seen


@pytest.mark.skipif(not native_available(), reason="no C compiler")
class TestFusedNativePath:
    """run_lines with a native scanner and the plain replay shape
    (timing off, no reorder, tolerant policy) routes through the fused
    single-pass C kernel; everything observable must match the unfused
    byte pipeline."""

    def fused_fleet(self, gen):
        fleet = make_fleet(gen, "native")
        if getattr(fleet.scanner, "scan_records", None) is None:
            pytest.skip("native kernels did not build")
        return fleet

    def test_clean_blob_matches_bytes_pipeline(self, gen, window, log_path):
        fused = self.fused_fleet(gen).run_lines(log_path, timing="off")
        plain = make_fleet(gen, "bytes").run_lines(log_path, timing="off")
        assert prediction_keys(fused.predictions) == \
            prediction_keys(plain.predictions)
        assert fused.ingest.as_dict() == plain.ingest.as_dict()
        assert fused.ingest.funnel_ok
        assert fused.lines_seen == plain.lines_seen
        assert fused.lines_tokenized == plain.lines_tokenized

    def test_corrupted_blob_quarantines_identically(self, gen, window):
        lines, report = corrupt_window(
            window.events, CorruptionSpec.all_kinds(0.03), seed=23)
        assert report.total_faults > 0
        blob = "\n".join(lines).encode("utf-8") + b"\n"
        fused = self.fused_fleet(gen).run_lines(
            blob, on_error="quarantine", timing="off")
        plain = make_fleet(gen, "bytes").run_lines(
            blob, on_error="quarantine", timing="off")
        assert prediction_keys(fused.predictions) == \
            prediction_keys(plain.predictions)
        assert fused.ingest.as_dict() == plain.ingest.as_dict()
        assert fused.ingest.quarantined > 0 and fused.ingest.funnel_ok

    def test_strict_policy_stays_on_unfused_path(self, gen, window):
        # strict must attribute the first bad record in order, which
        # the fused kernel cannot do; the clean-stream answers must
        # nevertheless agree between the two shapes.
        blob = "\n".join(
            e.to_line() for e in window.events).encode() + b"\n"
        fleet = self.fused_fleet(gen)
        strict = fleet.run_lines(blob, on_error="strict", timing="off")
        fused = self.fused_fleet(gen).run_lines(
            blob, on_error="warn", timing="off")
        assert prediction_keys(strict.predictions) == \
            prediction_keys(fused.predictions)
        assert strict.ingest.lines_read == fused.ingest.lines_read

    def test_scanner_funnel_folds_into_obs(self, gen, window, log_path):
        from repro.obs import LINES_SEEN, SCANNER_BACKEND_INFO, Observability

        obs = Observability()
        fleet = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout,
            scan_backend="native", obs=obs)
        if getattr(fleet.scanner, "scan_records", None) is None:
            pytest.skip("native kernels did not build")
        fleet.run_lines(log_path, timing="off")
        snap = obs.registry.snapshot()
        lines_seen = sum(
            s["value"] for s in snap[LINES_SEEN]["series"])
        assert lines_seen == len(window.events)
        backends = {s["labels"]["backend"]
                    for s in snap[SCANNER_BACKEND_INFO]["series"]}
        assert backends == {"native"}


class TestParallelBytePath:
    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_parallel_matches_serial(self, gen, window, backend):
        from repro.core.parallel import ParallelFleet

        bundle = PredictorBundle(
            store=gen.store, chains=gen.chains,
            timeout=gen.recommended_timeout, system="HPC3")
        serial = make_fleet(gen, "str").run(window.events).predictions
        with ParallelFleet(bundle, n_workers=2,
                           scan_backend=backend) as parallel:
            preds = parallel.run(window.events)
        key = lambda p: (p.node, p.chain_id, round(p.flagged_at, 6))
        assert sorted(map(key, serial)) == sorted(map(key, preds))
