"""Tests for the end-to-end Aarohi predictor (both backends)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AarohiPredictor, ChainSet, FailureChain, LogEvent
from repro.core.events import Severity
from repro.templates import TemplateStore


@pytest.fixture
def store():
    s = TemplateStore()
    s.add("[Firmware Bug]: powernow k8: *", Severity.ERRONEOUS, token=174)
    s.add("DVS: verify filesystem: *", Severity.UNKNOWN, token=140)
    s.add("DVS: file node down: *", Severity.UNKNOWN, token=129)
    s.add("Lustre: * cannot find peer *", Severity.UNKNOWN, token=175)
    s.add("Lnet: critical hardware error: *", Severity.ERRONEOUS, token=134)
    s.add("cb_node_unavailable: *", Severity.ERRONEOUS, token=127)
    s.add("Machine Check Exception *", Severity.ERRONEOUS, token=150)
    s.add("Kernel panic *", Severity.ERRONEOUS, token=151)
    return s


@pytest.fixture
def chains():
    # FC3 from Table III plus a second, disjoint chain.
    return ChainSet(
        [
            FailureChain(
                "FC3",
                (174, 140, 129, 175, 134, 127),
                deltas=(8.323, 16.506, 24.846, 36.372, 130.106),
            ),
            FailureChain("FC7", (150, 151)),
        ]
    )


TABLE3_MESSAGES = [
    (0.0, "[Firmware Bug]: powernow k8: disabling frequency"),
    (8.323, "DVS: verify filesystem: magic 0x6969 mismatch"),
    (24.829, "DVS: file node down: removing c4-2c0s0n2"),
    (49.675, "Lustre: 4521 cannot find peer 10.0.0.1"),
    (86.047, "Lnet: critical hardware error: bus fault"),
    (216.153, "cb_node_unavailable: c0-0c2s0n2"),
]


def events(messages, node="c0-0c2s0n2"):
    return [LogEvent(time=t, node=node, message=m) for t, m in messages]


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
class TestPredictorBackends:
    def test_table3_chain_predicts(self, store, chains, backend):
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        predictions = [
            p for e in events(TABLE3_MESSAGES) if (p := predictor.process(e))
        ]
        assert len(predictions) == 1
        pred = predictions[0]
        assert pred.chain_id == "FC3"
        assert pred.flagged_at == pytest.approx(216.153)
        assert pred.prediction_time > 0
        assert pred.matched_tokens == (174, 140, 129, 175, 134, 127)

    def test_benign_traffic_no_prediction(self, store, chains, backend):
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        benign = [
            (float(i), f"slurmd health check ok seq {i}") for i in range(50)
        ]
        assert all(predictor.process(e) is None for e in events(benign))
        assert predictor.stats.lines_tokenized == 0
        assert predictor.stats.fc_related_fraction == 0.0

    def test_mixed_stream_with_skips(self, store, chains, backend):
        # FC-related phrases of FC3 interleaved with benign and FC7 noise.
        msgs = [
            (0.0, "[Firmware Bug]: powernow k8: x"),
            (1.0, "healthy chatter one"),
            (8.0, "DVS: verify filesystem: y"),
            (9.0, "Machine Check Exception on cpu 3"),  # FC7 token: skipped
            (24.0, "DVS: file node down: z"),
            (30.0, "healthy chatter two"),
            (49.0, "Lustre: 99 cannot find peer host"),
            (86.0, "Lnet: critical hardware error: w"),
            (216.0, "cb_node_unavailable: node"),
        ]
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        predictions = [p for e in events(msgs) if (p := predictor.process(e))]
        assert [p.chain_id for p in predictions] == ["FC3"]

    def test_timeout_aborts_chain(self, store, chains, backend):
        msgs = list(TABLE3_MESSAGES)
        # Tear a >timeout gap between phrases 2 and 3.
        msgs = msgs[:2] + [(t + 10_000.0, m) for t, m in msgs[2:]]
        predictor = AarohiPredictor.from_store(
            chains, store, backend=backend, timeout=240.0
        )
        predictions = [p for e in events(msgs) if (p := predictor.process(e))]
        assert predictions == []

    def test_back_to_back_failures(self, store, chains, backend):
        first = events(TABLE3_MESSAGES)
        second = events([(t + 400.0, m) for t, m in TABLE3_MESSAGES])
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        predictions = [p for e in first + second if (p := predictor.process(e))]
        assert [p.chain_id for p in predictions] == ["FC3", "FC3"]

    def test_fc_related_fraction(self, store, chains, backend):
        msgs = TABLE3_MESSAGES + [
            (300.0 + i, f"benign message number {i}") for i in range(6)
        ]
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        for e in events(msgs):
            predictor.process(e)
        assert predictor.stats.fc_related_fraction == pytest.approx(0.5)

    def test_second_chain(self, store, chains, backend):
        msgs = [
            (0.0, "Machine Check Exception bank 4"),
            (5.0, "Kernel panic not syncing"),
        ]
        predictor = AarohiPredictor.from_store(chains, store, backend=backend)
        predictions = [p for e in events(msgs) if (p := predictor.process(e))]
        assert [p.chain_id for p in predictions] == ["FC7"]


class TestBackendCrossValidation:
    """Both backends must produce identical predictions on identical
    streams (chains with distinct starting phrases, per paper §III)."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "[Firmware Bug]: powernow k8: q",
                    "DVS: verify filesystem: q",
                    "DVS: file node down: q",
                    "Lustre: 1 cannot find peer q",
                    "Lnet: critical hardware error: q",
                    "cb_node_unavailable: q",
                    "Machine Check Exception q",
                    "Kernel panic q",
                    "benign chatter",
                ]
            ),
            max_size=30,
        )
    )
    def test_equivalence(self, msgs):
        store = TemplateStore()
        store.add("[Firmware Bug]: powernow k8: *", token=174)
        store.add("DVS: verify filesystem: *", token=140)
        store.add("DVS: file node down: *", token=129)
        store.add("Lustre: * cannot find peer *", token=175)
        store.add("Lnet: critical hardware error: *", token=134)
        store.add("cb_node_unavailable: *", token=127)
        store.add("Machine Check Exception *", token=150)
        store.add("Kernel panic *", token=151)
        chains = ChainSet(
            [
                FailureChain("FC3", (174, 140, 129, 175, 134, 127)),
                FailureChain("FC7", (150, 151)),
            ]
        )
        stream = [LogEvent(float(i), "n0", m) for i, m in enumerate(msgs)]
        results = {}
        for backend in ("matcher", "lalr"):
            predictor = AarohiPredictor.from_store(chains, store, backend=backend)
            results[backend] = [
                (p.chain_id, p.flagged_at)
                for e in stream
                if (p := predictor.process(e))
            ]
        assert results["matcher"] == results["lalr"]


class TestScannerVariants:
    def test_naive_scanner_same_predictions(self, store, chains):
        fast = AarohiPredictor.from_store(chains, store, optimized=True)
        naive = AarohiPredictor.from_store(chains, store, optimized=False)
        stream = events(TABLE3_MESSAGES)
        fast_preds = [(p.chain_id, p.flagged_at) for e in stream if (p := fast.process(e))]
        naive_preds = [(p.chain_id, p.flagged_at) for e in stream if (p := naive.process(e))]
        assert fast_preds == naive_preds == [("FC3", pytest.approx(216.153))]

    def test_unknown_backend_rejected(self, store, chains):
        with pytest.raises(ValueError):
            AarohiPredictor.from_store(chains, store, backend="wat")

    def test_feed_token_path(self, chains, store):
        predictor = AarohiPredictor.from_store(chains, store)
        tokens = [(174, 0.0), (140, 8.0), (129, 24.0), (175, 49.0), (134, 86.0)]
        for tok, t in tokens:
            assert predictor.feed_token(tok, t) is None
        pred = predictor.feed_token(127, 216.0)
        assert pred is not None and pred.chain_id == "FC3"
