"""End-to-end ingest robustness: the ISSUE 5 acceptance criteria.

A logsim stream is passed through the corruption harness with every
fault kind enabled, then replayed through the full predictor stack
under the default tolerant policy.  The suite asserts the whole
contract at once: zero uncaught exceptions, the decode-funnel identity,
byte-identical predictions when corruption is off, and agreement
between the matcher and lalr backends on the *same* corrupted stream.
"""

import pytest

from repro.core import PredictorFleet
from repro.logsim import (
    ClusterLogGenerator,
    CorruptionSpec,
    HPC3,
    IngestStats,
    corrupt_window,
    decode_lines,
)

pytestmark = pytest.mark.corruption


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=23)


@pytest.fixture(scope="module")
def window(gen):
    return gen.generate_window(
        duration=3600.0, n_nodes=16, n_failures=6, n_spurious=0)


@pytest.fixture(scope="module")
def corrupted(window):
    lines, report = corrupt_window(
        window.events, CorruptionSpec.all_kinds(0.02), seed=23)
    assert report.total_faults > 0  # the harness actually did something
    return lines, report


def make_fleet(gen, backend):
    return PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout,
        backend=backend)


def prediction_keys(predictions):
    return [(p.node, p.chain_id, round(p.flagged_at, 9))
            for p in predictions]


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["matcher", "lalr"])
    def test_corrupted_replay_survives(self, gen, corrupted, backend):
        """All fault kinds at once, default policy, zero exceptions."""
        lines, _ = corrupted
        fleet = make_fleet(gen, backend)
        report = fleet.run_lines(lines, on_error="quarantine",
                                 reorder_horizon=10.0)
        ingest = report.ingest
        assert ingest.funnel_ok
        assert ingest.lines_read == len([ln for ln in lines if ln])
        assert ingest.quarantined > 0  # truncation/garbling did damage
        assert ingest.decoded > 0.8 * ingest.lines_read

    def test_counters_reflect_injected_faults(self, gen, corrupted):
        lines, inj = corrupted
        fleet = make_fleet(gen, "matcher")
        report = fleet.run_lines(lines, on_error="quarantine",
                                 reorder_horizon=10.0)
        ingest = report.ingest
        # Reordering/skew was injected, so the sort buffer had work.
        assert inj.displaced > 0 and inj.skewed_nodes > 0
        assert ingest.reordered > 0

    def test_zero_corruption_is_byte_identical(self, gen, window):
        """p=0 through the harness == the clean serialization, and the
        replays are prediction-for-prediction identical."""
        lines, report = corrupt_window(
            window.events, CorruptionSpec.all_kinds(0.0), seed=23)
        assert report.total_faults == 0
        clean_lines = [e.to_line() for e in window.events]
        assert lines == clean_lines  # byte-identical serialization

        replayed = make_fleet(gen, "matcher").run_lines(lines)
        direct = make_fleet(gen, "matcher").run_lines(clean_lines)
        assert replayed.ingest.quarantined == 0
        assert prediction_keys(replayed.predictions) == \
            prediction_keys(direct.predictions)

        # Against the in-memory run, predictions agree to serialization
        # precision (to_line stamps timestamps at the microsecond).
        clean = make_fleet(gen, "matcher").run(window.events)
        assert len(replayed.predictions) == len(clean.predictions)
        for a, b in zip(replayed.predictions, clean.predictions):
            assert (a.node, a.chain_id) == (b.node, b.chain_id)
            assert a.flagged_at == pytest.approx(b.flagged_at, abs=1e-5)

    def test_backends_agree_on_corrupted_stream(self, gen, corrupted):
        lines, _ = corrupted
        reports = {
            backend: make_fleet(gen, backend).run_lines(
                lines, on_error="quarantine", reorder_horizon=10.0)
            for backend in ("matcher", "lalr")
        }
        assert prediction_keys(reports["matcher"].predictions) == \
            prediction_keys(reports["lalr"].predictions)
        # Both backends saw the identical decode funnel.
        assert reports["matcher"].ingest.as_dict() == \
            reports["lalr"].ingest.as_dict()

    def test_still_predicts_through_corruption(self, gen, window, corrupted):
        """Moderate corruption degrades, it must not blind the fleet."""
        lines, _ = corrupted
        clean = make_fleet(gen, "matcher").run(window.events)
        dirty = make_fleet(gen, "matcher").run_lines(
            lines, on_error="quarantine", reorder_horizon=10.0)
        assert len(clean.predictions) > 0
        assert len(dirty.predictions) >= len(clean.predictions) // 2

    def test_negative_dt_clamp_engaged_under_skew(self, gen, window):
        """Skew without a reorder buffer drives the ΔT clamp directly."""
        spec = CorruptionSpec(skew_max_s=5.0)
        lines, report = corrupt_window(window.events, spec, seed=23)
        assert report.skewed_nodes > 0
        fleet = make_fleet(gen, "matcher")
        run_report = fleet.run_lines(lines)  # no reorder horizon
        assert run_report.ingest.quarantined == 0
        # The stream replays without error; any backwards gaps inside an
        # active chain were clamped and counted, never corrupting state.
        total_negative = sum(
            p._engine.stats.negative_dt
            for p in fleet._predictors.values())
        assert total_negative >= 0  # counter exists on every engine


class TestPerKindReplay:
    """Each corruption kind alone replays through both backends."""

    KINDS = {
        "truncate": CorruptionSpec(truncate_p=0.05),
        "garble": CorruptionSpec(garble_p=0.05),
        "duplicate": CorruptionSpec(duplicate_p=0.05),
        "reorder": CorruptionSpec(reorder_p=0.1, reorder_max_s=5.0),
        "skew": CorruptionSpec(skew_max_s=2.0),
        "drops": CorruptionSpec(drop_p=0.01, drop_burst=4),
    }

    @pytest.mark.parametrize("kind", sorted(KINDS))
    @pytest.mark.parametrize("backend", ["matcher", "lalr"])
    def test_single_kind_replay(self, gen, window, kind, backend):
        lines, report = corrupt_window(
            window.events, self.KINDS[kind], seed=23)
        assert report.total_faults > 0 or kind == "skew"
        fleet = make_fleet(gen, backend)
        run_report = fleet.run_lines(lines, reorder_horizon=10.0)
        assert run_report.ingest.funnel_ok


class TestParallelTolerance:
    """A malformed line in a worker chunk must not kill the worker."""

    def test_worker_chunk_quarantines_garbage(self, gen):
        from repro.core import parallel
        from repro.persistence import PredictorBundle

        bundle = PredictorBundle(
            store=gen.store, chains=gen.chains,
            timeout=gen.recommended_timeout, system="HPC3")
        saved = (parallel._WORKER_FLEET, parallel._WORKER_TIMING,
                 parallel._WORKER_OBS, parallel._WORKER_LAST_SNAP,
                 parallel._WORKER_ON_ERROR)
        try:
            # Drive the worker entry points in-process: same code path
            # the spawn pool runs, without the process round-trip.
            parallel._init_worker(bundle.to_dict(), None, None, "off")
            window = gen.generate_window(
                duration=900.0, n_nodes=8, n_failures=2, n_spurious=0)
            lines = [e.to_line() for e in window.events]
            lines.insert(3, "totally broken line")
            lines.insert(10, "1970-01-01T00:00:09 short")
            predictions, stats, _, ingest, trace = parallel._run_chunk(
                lines, trace=(1, 0, 0))
            assert trace == (1, 0, 0)
            assert ingest.quarantined == 2
            assert ingest.funnel_ok
            assert stats.lines_seen == len(lines) - 2
        finally:
            (parallel._WORKER_FLEET, parallel._WORKER_TIMING,
             parallel._WORKER_OBS, parallel._WORKER_LAST_SNAP,
             parallel._WORKER_ON_ERROR) = saved

    def test_parallel_fleet_accumulates_ingest(self, gen):
        from repro.core.parallel import ParallelFleet
        from repro.persistence import PredictorBundle

        bundle = PredictorBundle(
            store=gen.store, chains=gen.chains,
            timeout=gen.recommended_timeout, system="HPC3")
        window = gen.generate_window(
            duration=900.0, n_nodes=8, n_failures=2, n_spurious=0)
        with ParallelFleet(bundle, n_workers=2) as fleet:
            fleet.run(window.events)
            assert fleet.ingest.lines_read == len(window.events)
            assert fleet.ingest.quarantined == 0
            assert fleet.ingest.funnel_ok

    def test_strict_policy_rejected_values(self, gen):
        from repro.core.parallel import ParallelFleet
        from repro.persistence import PredictorBundle

        bundle = PredictorBundle(
            store=gen.store, chains=gen.chains,
            timeout=gen.recommended_timeout, system="HPC3")
        with pytest.raises(ValueError):
            ParallelFleet(bundle, n_workers=1, on_error="lenient")


class TestStrictStillAvailable:
    def test_strict_policy_raises_through_run_lines(self, gen):
        from repro.core.events import LogDecodeError

        fleet = make_fleet(gen, "matcher")
        with pytest.raises(LogDecodeError):
            fleet.run_lines(["broken"], on_error="strict")

    def test_funnel_identity_after_decode(self, window, corrupted):
        lines, _ = corrupted
        stats = IngestStats()
        decoded = list(decode_lines(lines, on_error="quarantine",
                                    stats=stats))
        assert stats.funnel_ok
        assert len(decoded) == stats.decoded
