"""Tests for the multiprocess sharded fleet."""

import pytest

from repro.core import PredictorFleet, pair_predictions
from repro.core.parallel import ParallelFleet, partition_events, shard_of
from repro.logsim import ClusterLogGenerator, HPC3
from repro.persistence import PredictorBundle


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=61)


@pytest.fixture(scope="module")
def bundle(gen):
    return PredictorBundle(
        store=gen.store, chains=gen.chains,
        timeout=gen.recommended_timeout, system="HPC3")


@pytest.fixture(scope="module")
def window(gen):
    return gen.generate_window(
        duration=3600.0, n_nodes=24, n_failures=8, n_spurious=0)


class TestSharding:
    def test_shard_of_stable(self):
        assert shard_of("c0-0c2s0n2", 8) == shard_of("c0-0c2s0n2", 8)

    def test_shard_in_range(self):
        for i in range(50):
            assert 0 <= shard_of(f"c{i}-0c0s0n0", 7) < 7

    def test_partition_preserves_order_and_coverage(self, window):
        shards = partition_events(window.events, 4)
        assert sum(len(s) for s in shards) == len(window.events)
        for shard in shards:
            times = [e.time for e in shard]
            assert times == sorted(times)
        # A node's events all land in one shard.
        for shard_idx, shard in enumerate(shards):
            for event in shard:
                assert shard_of(event.node, 4) == shard_idx


class TestParallelFleet:
    def test_matches_serial_fleet(self, gen, bundle, window):
        serial = PredictorFleet.from_store(
            gen.chains, gen.store, timeout=gen.recommended_timeout)
        serial_preds = serial.run(window.events).predictions
        with ParallelFleet(bundle, n_workers=3) as parallel:
            parallel_preds = parallel.run(window.events)
        key = lambda p: (p.node, p.chain_id, round(p.flagged_at, 6))
        assert sorted(map(key, serial_preds)) == sorted(map(key, parallel_preds))

    def test_predictions_pair_with_failures(self, bundle, window):
        with ParallelFleet(bundle, n_workers=2) as parallel:
            predictions = parallel.run(window.events)
        pairing = pair_predictions(predictions, window.failures)
        detectable = sum(
            1 for i in window.injections if i.kind == "detectable")
        assert pairing.true_positives == detectable

    def test_reusable_across_windows(self, gen, bundle):
        w1 = gen.generate_window(duration=900.0, n_nodes=8, n_failures=2,
                                 n_spurious=0)
        w2 = gen.generate_window(duration=900.0, n_nodes=8, n_failures=2,
                                 n_spurious=0)
        with ParallelFleet(bundle, n_workers=2) as parallel:
            p1 = parallel.run(w1.events)
            p2 = parallel.run(w2.events)
        assert len(p1) >= 1 and len(p2) >= 1

    def test_invalid_workers(self, bundle):
        with pytest.raises(ValueError):
            ParallelFleet(bundle, n_workers=0)
