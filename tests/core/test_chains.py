"""Tests for failure chains and subchain discovery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.chains import ChainSet, FailureChain, common_subchains


def fc(cid, tokens, deltas=()):
    return FailureChain(chain_id=cid, tokens=tuple(tokens), deltas=tuple(deltas))


class TestFailureChain:
    def test_basic(self):
        chain = fc("FC1", [176, 177, 178, 179, 180, 137])
        assert len(chain) == 6
        assert chain.first == 176
        assert chain.terminal == 137

    def test_too_short(self):
        with pytest.raises(ValueError, match="≥2"):
            fc("X", [1])

    def test_repeated_phrase_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            fc("X", [1, 2, 1])

    def test_delta_length_mismatch(self):
        with pytest.raises(ValueError, match="deltas"):
            fc("X", [1, 2, 3], deltas=[1.0])

    def test_expected_span(self):
        chain = fc("X", [1, 2, 3], deltas=[8.3, 16.5])
        assert chain.expected_span() == pytest.approx(24.8)

    def test_expected_span_no_deltas(self):
        assert fc("X", [1, 2]).expected_span() == 0.0


class TestChainSet:
    def make(self):
        return ChainSet(
            [
                fc("FC1", [176, 177, 178, 179, 180, 137]),
                fc("FC5", [172, 177, 178, 193, 137]),
            ]
        )

    def test_token_list_order_and_dedup(self):
        cs = self.make()
        assert cs.token_list == (176, 177, 178, 179, 180, 137, 172, 193)

    def test_relevance(self):
        cs = self.make()
        assert cs.is_relevant(177)
        assert not cs.is_relevant(999)

    def test_starting_with(self):
        cs = self.make()
        assert [c.chain_id for c in cs.starting_with(176)] == ["FC1"]
        assert cs.starting_with(177) == []

    def test_lookup_by_id(self):
        cs = self.make()
        assert cs["FC5"].first == 172
        with pytest.raises(KeyError):
            cs["nope"]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChainSet([fc("A", [1, 2]), fc("A", [3, 4])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChainSet([])

    def test_max_length(self):
        assert self.make().max_length() == 6

    def test_suggest_timeout_default(self):
        assert self.make().suggest_timeout() == 240.0

    def test_suggest_timeout_from_deltas(self):
        # 93rd percentile of the trained ΔTs, per §III.
        chains = ChainSet(
            [fc("A", [1, 2, 3], deltas=[10.0, 20.0]), fc("B", [4, 5], deltas=[30.0])]
        )
        t = chains.suggest_timeout(quantile=0.5)
        assert t in (10.0, 20.0, 30.0)
        assert chains.suggest_timeout(quantile=0.99) == 30.0


class TestCommonSubchains:
    def test_table4_example(self):
        fc1 = [176, 177, 178, 179, 180, 137]
        fc5 = [172, 177, 178, 193, 137]
        subs = common_subchains(fc1, fc5)
        assert (177, 178) in subs

    def test_no_common(self):
        assert common_subchains([1, 2, 3], [4, 5, 6]) == []

    def test_min_len_respected(self):
        assert common_subchains([1, 2], [9, 2], min_len=2) == []
        assert common_subchains([1, 2], [9, 2], min_len=1) == [(2,)]

    def test_longest_first(self):
        a = [1, 2, 3, 4, 9, 5, 6]
        b = [1, 2, 3, 4, 8, 5, 6]
        subs = common_subchains(a, b)
        assert subs[0] == (1, 2, 3, 4)
        assert (5, 6) in subs

    def test_non_overlapping_within_a(self):
        a = [1, 2, 3]
        b = [1, 2, 3]
        subs = common_subchains(a, b)
        assert subs == [(1, 2, 3)]

    @given(
        st.lists(st.integers(0, 9), min_size=2, max_size=12, unique=True),
        st.lists(st.integers(0, 9), min_size=2, max_size=12, unique=True),
    )
    def test_subchains_actually_common(self, a, b):
        for sub in common_subchains(a, b):
            assert _contains(a, sub) and _contains(b, sub)


def _contains(seq, sub):
    k = len(sub)
    return any(tuple(seq[i : i + k]) == sub for i in range(len(seq) - k + 1))
