"""Differential equivalence suite for the batched hot path.

The batched drivers (:meth:`AarohiPredictor.process_batch`,
:meth:`PredictorFleet.run` with its ``timing`` modes) are pure
performance restructurings: under a constant clock they must produce
**byte-identical** predictions and stats to the per-event
:meth:`AarohiPredictor.process` loop, for both backends, with and
without timeout pressure, on multi-node interleaved streams with
benign noise.
"""

import pytest

from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
from repro.core.events import Severity
from repro.core.predictor import AarohiPredictor
from repro.templates import TemplateStore

ZERO_CLOCK = lambda: 0.0  # noqa: E731 — constant clock: timings byte-compare


@pytest.fixture(scope="module")
def store():
    s = TemplateStore()
    s.add("alpha fault *", Severity.ERRONEOUS, token=301)
    s.add("beta warn *", Severity.UNKNOWN, token=302)
    s.add("gamma err *", Severity.ERRONEOUS, token=303)
    s.add("delta panic *", Severity.ERRONEOUS, token=304)
    s.add("epsilon trap *", Severity.UNKNOWN, token=305)
    return s


@pytest.fixture(scope="module")
def chains():
    return ChainSet([
        FailureChain("FC_x", (301, 302, 303)),
        FailureChain("FC_y", (304, 305)),
    ])


def mixed_stream(n_nodes=4, repeats=6, gap_every=5):
    """Interleaved multi-node stream: chain phrases, benign noise, and
    periodic long gaps that trip small timeouts mid-chain."""
    msgs = [
        "alpha fault a", "benign chatter one", "beta warn b",
        "delta panic d", "unrelated noise xyz", "gamma err c",
        "epsilon trap e", "zeta nothing at all",
    ]
    events = []
    t = 0.0
    for r in range(repeats):
        for i, m in enumerate(msgs):
            node = f"node-{(r + i) % n_nodes}"
            t += 100.0 if (r * len(msgs) + i) % gap_every == 0 else 1.0
            events.append(LogEvent(t, node, m))
    return events


def run_per_event(fleet, events):
    """The reference path: one process() call per event, stream order."""
    out = []
    for event in events:
        prediction = fleet.process(event)
        if prediction is not None:
            out.append(prediction)
    return out


def fleet_stats(fleet):
    return {
        node: (p.stats.lines_seen, p.stats.lines_tokenized,
               p.stats.predictions, p.stats.tokenize_seconds,
               p.stats.feed_seconds)
        for node, p in fleet._predictors.items()
    }


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
@pytest.mark.parametrize("timeout", [100.0, 3.0])
@pytest.mark.parametrize("timing", ["full", "sampled", "off"])
class TestFleetBatchedEquivalence:
    def test_identical_predictions_and_stats(
        self, store, chains, backend, timeout, timing
    ):
        events = mixed_stream()
        reference = PredictorFleet.from_store(
            chains, store, timeout=timeout, backend=backend, clock=ZERO_CLOCK)
        expected = run_per_event(reference, events)

        batched = PredictorFleet.from_store(
            chains, store, timeout=timeout, backend=backend, clock=ZERO_CLOCK)
        report = batched.run(events, timing=timing)

        assert report.predictions == expected  # dataclass eq: every field
        assert fleet_stats(batched) == fleet_stats(reference)
        assert report.lines_seen == len(events)
        assert report.lines_tokenized == sum(
            p.stats.lines_tokenized for p in reference._predictors.values())


@pytest.mark.parametrize("backend", ["matcher", "lalr"])
@pytest.mark.parametrize("timing", ["full", "sampled", "off"])
class TestPredictorBatchEquivalence:
    def test_process_batch_matches_process(self, store, chains, backend, timing):
        events = [e for e in mixed_stream(n_nodes=1)]
        ref = AarohiPredictor.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK)
        expected = [p for p in map(ref.process, events) if p is not None]

        batched = AarohiPredictor.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK)
        got = batched.process_batch(events, timing=timing)

        assert got == expected
        assert batched.stats.lines_seen == ref.stats.lines_seen
        assert batched.stats.lines_tokenized == ref.stats.lines_tokenized
        assert batched.stats.predictions == ref.stats.predictions

    def test_batch_boundaries_are_invisible(self, store, chains, backend, timing):
        """Splitting one stream across several process_batch calls keeps
        mid-chain state (chain cost, engine position) intact."""
        events = mixed_stream(n_nodes=1)
        whole = AarohiPredictor.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK)
        expected = whole.process_batch(events, timing=timing)

        split = AarohiPredictor.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK)
        got = []
        for start in range(0, len(events), 7):
            got.extend(split.process_batch(events[start:start + 7], timing=timing))
        assert got == expected


class TestTimingModes:
    def test_off_reads_no_clock(self, store, chains):
        reads = []

        def counting_clock():
            reads.append(1)
            return 0.0

        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=counting_clock)
        fleet.run(mixed_stream(), timing="off")
        assert not reads

    def test_sampled_skips_discarded_lines(self, store, chains):
        reads = []

        def counting_clock():
            reads.append(1)
            return 0.0

        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=counting_clock)
        report = fleet.run(mixed_stream(), timing="sampled")
        # Exactly two reads per FC-related phrase, none for discards.
        assert len(reads) == 2 * report.lines_tokenized

    def test_unknown_timing_rejected(self, store, chains):
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        with pytest.raises(ValueError):
            fleet.run(mixed_stream(), timing="warp")


class TestInstrumentedEquivalence:
    """The counting scanner and obs wiring are pure observers: they must
    not change predictions, and the funnel stages must account for every
    line exactly once."""

    @pytest.mark.parametrize("backend", ["matcher", "lalr"])
    def test_instrumented_run_identical(self, store, chains, backend):
        from repro.obs import Observability

        events = mixed_stream()
        plain = PredictorFleet.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK)
        expected = plain.run(events, timing="off")

        obs = Observability()
        wired = PredictorFleet.from_store(
            chains, store, timeout=3.0, backend=backend, clock=ZERO_CLOCK,
            obs=obs)
        report = wired.run(events, timing="off")
        assert report.predictions == expected.predictions
        assert report.stats == expected.stats

    def test_funnel_counters_sum_to_lines_seen(self, store, chains):
        from repro.obs import FUNNEL_STAGES, LINES_SEEN, Observability

        obs = Observability()
        fleet = PredictorFleet.from_store(
            chains, store, timeout=100.0, clock=ZERO_CLOCK, obs=obs)
        fleet.run(mixed_stream())
        fleet.run(mixed_stream())  # funnel identity holds cumulatively
        snap = obs.registry.snapshot()

        def total(name):
            return sum(e["value"] for e in snap[name]["series"])

        assert sum(total(name) for name, _ in FUNNEL_STAGES) == total(LINES_SEEN)


class TestRunWindowAccounting:
    def test_second_run_not_double_counted(self, store, chains):
        """Regression: FleetReport summed cumulative per-predictor
        counters, so a second run() re-reported the first window."""
        events = mixed_stream()
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        first = fleet.run(events)
        second = fleet.run(events)
        assert first.lines_seen == len(events)
        assert second.lines_seen == len(events)
        assert second.lines_tokenized == first.lines_tokenized

    def test_mixed_process_and_run_windows(self, store, chains):
        events = mixed_stream()
        fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
        for event in events[:10]:
            fleet.process(event)
        report = fleet.run(events[10:])
        assert report.lines_seen == len(events) - 10
