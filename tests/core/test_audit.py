"""Tests for the prediction audit trail."""

import io

import pytest

from repro.core import ChainSet, FailureChain, LogEvent, PredictorFleet
from repro.core.audit import AuditLog, AuditRecord, read_audit_log
from repro.templates import TemplateStore


@pytest.fixture
def env():
    store = TemplateStore()
    store.add("omega fail *", token=501)
    store.add("psi crash *", token=502)
    chains = ChainSet([FailureChain("FC_audit", (501, 502))])
    fleet = PredictorFleet.from_store(chains, store, timeout=100.0)
    events = [
        LogEvent(0.0, "n1", "omega fail a"),
        LogEvent(1.0, "n1", "unrelated noise"),
        LogEvent(2.0, "n1", "psi crash b"),
    ]
    return fleet, events


class TestAuditLog:
    def test_records_predictions(self, env):
        fleet, events = env
        audit = AuditLog(fleet)
        predictions = audit.run(events)
        assert len(predictions) == 1
        assert len(audit.records) == 1
        record = audit.records[0]
        assert record.chain_id == "FC_audit"
        assert record.node == "n1"
        assert record.matched_tokens == (501, 502)
        assert record.lines_seen == 3
        assert 0 < record.fc_related_fraction <= 1

    def test_writes_jsonl_to_stream(self, env):
        fleet, events = env
        buffer = io.StringIO()
        AuditLog(fleet, sink=buffer).run(events)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1
        back = AuditRecord.from_json(lines[0])
        assert back.chain_id == "FC_audit"

    def test_file_roundtrip(self, env, tmp_path):
        fleet, events = env
        path = tmp_path / "audit.jsonl"
        with AuditLog(fleet, sink=path) as audit:
            audit.run(events)
        records = list(read_audit_log(path))
        assert len(records) == 1
        original = audit.records[0]
        back = records[0]
        assert back.node == original.node
        assert back.chain_id == original.chain_id
        assert back.flagged_at == original.flagged_at
        assert back.matched_tokens == original.matched_tokens
        assert back.prediction_time == pytest.approx(
            original.prediction_time, rel=1e-9)
        assert back.fc_related_fraction == pytest.approx(
            original.fc_related_fraction, abs=1e-4)

    def test_append_mode(self, env, tmp_path):
        fleet, events = env
        path = tmp_path / "audit.jsonl"
        with AuditLog(fleet, sink=path) as audit:
            audit.run(events)
        # A second session appends.
        store = TemplateStore()
        store.add("omega fail *", token=501)
        store.add("psi crash *", token=502)
        chains = ChainSet([FailureChain("FC_audit", (501, 502))])
        fleet2 = PredictorFleet.from_store(chains, store, timeout=100.0)
        with AuditLog(fleet2, sink=path) as audit2:
            audit2.run([LogEvent(t + 100.0, "n2", e.message)
                        for t, e in enumerate(events)])
        assert len(list(read_audit_log(path))) == 2

    def test_json_fields(self, env):
        fleet, events = env
        audit = AuditLog(fleet)
        audit.run(events)
        import json
        data = json.loads(audit.records[0].to_json())
        assert set(data) == {
            "node", "chain", "flagged_at", "prediction_time_ms",
            "tokens", "lines_seen", "fc_related_fraction",
        }
