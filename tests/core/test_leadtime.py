"""Tests for prediction↔failure pairing and lead-time reports."""

import pytest

from repro.core.events import NodeFailure, Prediction
from repro.core.leadtime import pair_predictions


def pred(node, at, cost=0.001, chain="FC"):
    return Prediction(node=node, chain_id=chain, flagged_at=at,
                      prediction_time=cost)


def fail(node, at, chain=None):
    return NodeFailure(node=node, time=at, chain_id=chain)


class TestPairing:
    def test_simple_match(self):
        report = pair_predictions([pred("a", 100.0)], [fail("a", 220.0)])
        assert report.true_positives == 1
        record = report.matched[0]
        assert record.lead_time == pytest.approx(120.0)
        assert record.effective_lead_time == pytest.approx(119.999)

    def test_wrong_node_is_fp_and_fn(self):
        report = pair_predictions([pred("a", 100.0)], [fail("b", 150.0)])
        assert report.false_positives == [pred("a", 100.0)]
        assert len(report.missed_failures) == 1

    def test_flag_after_failure_is_fp(self):
        report = pair_predictions([pred("a", 300.0)], [fail("a", 200.0)])
        assert len(report.false_positives) == 1
        assert len(report.missed_failures) == 1

    def test_horizon_limits_pairing(self):
        report = pair_predictions(
            [pred("a", 0.0)], [fail("a", 5000.0)], horizon=1000.0)
        assert report.true_positives == 0

    def test_earliest_prediction_wins(self):
        report = pair_predictions(
            [pred("a", 150.0), pred("a", 100.0)], [fail("a", 200.0)])
        assert report.true_positives == 1
        assert report.matched[0].prediction.flagged_at == 100.0
        # The duplicate flag is NOT a false positive.
        assert report.false_positives == []

    def test_two_failures_same_node(self):
        failures = [fail("a", 200.0), fail("a", 900.0)]
        predictions = [pred("a", 100.0), pred("a", 800.0)]
        report = pair_predictions(predictions, failures)
        assert report.true_positives == 2
        leads = sorted(r.lead_time for r in report.matched)
        assert leads == [pytest.approx(100.0), pytest.approx(100.0)]

    def test_prediction_claims_earliest_eligible_failure(self):
        failures = [fail("a", 300.0), fail("a", 500.0)]
        report = pair_predictions([pred("a", 100.0)], failures)
        assert report.matched[0].failure.time == 300.0
        assert len(report.missed_failures) == 1

    def test_empty_inputs(self):
        report = pair_predictions([], [])
        assert report.true_positives == 0
        assert report.mean_lead_time() == 0.0
        assert report.std_lead_time() == 0.0
        assert report.mean_prediction_time() == 0.0


class TestReportStatistics:
    def make(self):
        predictions = [pred("a", 100.0, cost=0.001),
                       pred("b", 50.0, cost=0.003)]
        failures = [fail("a", 220.0), fail("b", 230.0)]
        return pair_predictions(predictions, failures)

    def test_means(self):
        report = self.make()
        assert report.mean_lead_time() == pytest.approx((119.999 + 179.997) / 2)
        assert report.mean_prediction_time() == pytest.approx(0.002)

    def test_stds(self):
        report = self.make()
        assert report.std_lead_time() > 0
        assert report.std_prediction_time() == pytest.approx(0.001)

    def test_lead_times_list(self):
        report = self.make()
        assert len(report.lead_times()) == 2
