"""End-to-end observability drill: a corrupted, deadline-paced stream
through a 2-shard :class:`ParallelFleet` with spans and the flight
recorder armed.

The acceptance triangle for the debug plane (ISSUE 7):

(a) per-shard stage breakdowns reassembled from the merged registry sum
    to each shard's observed run wall time (the telescoping invariant
    survives the worker → parent snapshot/diff/merge trip), and stay
    bounded by the parent-side wall clock;
(b) a forced deadline burn produces exactly one flight capsule whose
    JSONL replays into events that all precede the trigger;
(c) ``/debug/spans`` and ``/debug/flight`` serve the same data the
    capsule file contains.

Run with ``-m corruption``.  Set ``AAROHI_FLIGHT_DIR`` to redirect the
capsule directory (CI uploads it as a workflow artifact on failure).
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

np = pytest.importorskip("numpy")

from repro.core.parallel import ParallelFleet
from repro.logsim import ClusterLogGenerator, CorruptionSpec, corrupt_window, HPC3
from repro.obs import (
    FlightRecorder,
    LiveMonitor,
    Observability,
    ObsServer,
    TRIGGER_DEADLINE,
    read_capsule,
    shard_span_breakdown,
)
from repro.persistence import PredictorBundle

pytestmark = pytest.mark.corruption


def fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    """One corrupted deadline-paced replay, shared by all assertions."""
    flight_dir = os.environ.get("AAROHI_FLIGHT_DIR")
    if flight_dir is None:
        flight_dir = tmp_path_factory.mktemp("capsules")
    gen = ClusterLogGenerator(HPC3, seed=61)
    window = gen.generate_window(
        duration=3600.0, n_nodes=16, n_failures=8, n_spurious=2)
    lines, report = corrupt_window(
        window.events, CorruptionSpec.all_kinds(0.02), seed=61)
    assert report.total_faults > 0
    bundle = PredictorBundle(
        store=gen.store, chains=gen.chains,
        timeout=gen.recommended_timeout, system="HPC3")
    # A vanishingly small deadline budget forces the burn: every timed
    # prediction is over budget, so the verdict goes not-ok on the
    # first run and the deadline trigger must capsule exactly once.
    # The quarantine SLO is set far above the injected corruption rate
    # so the *only* anomaly in this drill is the deadline.
    obs = Observability(
        live=LiveMonitor(1e-12),
        quarantine_slo=0.5,
        flight=FlightRecorder(capacity=128, directory=flight_dir),
    )
    with ParallelFleet(
        bundle, n_workers=2, obs=obs, timing="full",
        chunk_lines=1024, spans_sample=1.0,
    ) as fleet:
        t0 = time.perf_counter()
        predictions = fleet.run_lines(lines)
        wall = time.perf_counter() - t0
    return {
        "obs": obs,
        "predictions": predictions,
        "wall": wall,
        "flight_dir": flight_dir,
    }


class TestShardSpans:
    def test_breakdowns_sum_to_observed_wall_time(self, drill):
        obs, wall = drill["obs"], drill["wall"]
        breakdown = shard_span_breakdown(obs.registry.snapshot())
        shards = {s for s in breakdown if s != "-"}
        assert shards == {"0", "1"}
        for shard in shards:
            data = breakdown[shard]
            assert data["runs_sampled"] > 0
            stage_sum = sum(
                cell["seconds"] for cell in data["stages"].values())
            # (a) telescoping survives the merge: stages sum to the
            # shard's sampled run wall time...
            assert stage_sum == pytest.approx(
                data["run_seconds"], rel=1e-6, abs=1e-9)
            # ...and a worker cannot have spent longer than the parent
            # observed waiting for it.
            assert data["run_seconds"] <= wall

    def test_every_stage_accounts_records(self, drill):
        breakdown = shard_span_breakdown(drill["obs"].registry.snapshot())
        for shard in ("0", "1"):
            stages = breakdown[shard]["stages"]
            assert stages["decode"]["records"] > 0
            assert stages["match"]["records"] > 0


class TestDeadlineCapsule:
    def test_exactly_one_capsule_fired(self, drill):
        flight = drill["obs"].flight
        assert flight.capsules == 1
        assert list(flight.triggered) == [TRIGGER_DEADLINE]
        assert flight.last_reason == TRIGGER_DEADLINE

    def test_capsule_replays_events_preceding_the_trigger(self, drill):
        flight = drill["obs"].flight
        parsed = read_capsule(flight.last_capsule_path)
        header = parsed["header"]
        assert header["reason"] == TRIGGER_DEADLINE
        assert header["verdict"]["ok"] is False
        events = parsed["events"]
        assert events, "the ring must have buffered the run-up"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert all(e["wall"] <= header["wall"] for e in events)
        kinds = {e["kind"] for e in events}
        assert "chunk_done" in kinds  # the parallel run-up was captured
        # The snapshot frozen into the capsule carries the merged
        # per-shard span series.
        snap_breakdown = shard_span_breakdown(parsed["snapshot"])
        assert {"0", "1"} <= set(snap_breakdown)

    def test_chunk_done_events_carry_trace_context(self, drill):
        parsed = read_capsule(drill["obs"].flight.last_capsule_path)
        chunk_events = [
            e for e in parsed["events"] if e["kind"] == "chunk_done"]
        for event in chunk_events:
            assert event["run"] == 1
            assert event["shard"] in (0, 1)
            assert event["chunk"] >= 0
            assert event["lines"] > 0


class TestDebugPlaneAgreement:
    def test_debug_flight_serves_the_capsule_file(self, drill):
        obs = drill["obs"]
        with ObsServer(obs) as server:
            status, body = fetch(server.url("/debug/flight"))
        assert status == 200
        assert body == obs.flight.last_capsule_text
        assert body == obs.flight.last_capsule_path.read_text(
            encoding="utf-8")

    def test_debug_spans_matches_the_capsule_snapshot(self, drill):
        obs = drill["obs"]
        with ObsServer(obs) as server:
            status, body = fetch(server.url("/debug/spans"))
        assert status == 200
        served = json.loads(body)["shards"]
        parsed = read_capsule(obs.flight.last_capsule_text)
        frozen = shard_span_breakdown(parsed["snapshot"])
        # No runs happened after the trigger, so the live registry and
        # the frozen snapshot describe the same spans.
        for shard in ("0", "1"):
            assert served[shard]["run_seconds"] == pytest.approx(
                frozen[shard]["run_seconds"])
            assert served[shard]["stages"] == frozen[shard]["stages"]

    def test_debug_vars_reports_the_capsule(self, drill):
        obs = drill["obs"]
        with ObsServer(obs) as server:
            status, body = fetch(server.url("/debug/vars"))
        assert status == 200
        payload = json.loads(body)
        assert payload["flight"]["capsules"] == 1
        assert payload["flight"]["last_reason"] == TRIGGER_DEADLINE
        assert list(payload["flight"]["triggered"]) == [TRIGGER_DEADLINE]
