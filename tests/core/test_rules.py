"""Tests for Algorithm 1 (FCs → rules) and grammar building (Table IV)."""

import pytest

from repro.core.chains import ChainSet, FailureChain
from repro.core.grammar_builder import (
    build_chain_tables,
    factored_grammar,
    flat_grammar,
)
from repro.core.rules import build_rules
from repro.parsegen import LRParser, ParseError, build_tables


def table4_chains():
    return ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )


class TestAlgorithm1:
    def test_token_list(self):
        rs = build_rules(table4_chains())
        assert rs.token_list == (176, 177, 178, 179, 180, 137, 172, 193)

    def test_flat_rules(self):
        rs = build_rules(table4_chains(), factor=False)
        assert [r.tokens for r in rs.rules] == [
            (176, 177, 178, 179, 180, 137),
            (172, 177, 178, 193, 137),
        ]
        assert rs.factored == []

    def test_subchain_nonterminal_extracted(self):
        rs = build_rules(table4_chains())
        assert (177, 178) in rs.subchain_nts.values()

    def test_middle_grouping_matches_table4(self):
        rs = build_rules(table4_chains())
        # One C group with alternatives (B 179 180) and (B 193).
        assert len(rs.group_nts) == 1
        (alts,) = rs.group_nts.values()
        b_name = next(iter(rs.subchain_nts))
        assert (b_name, 179, 180) in alts
        assert (b_name, 193) in alts
        # S-level: (176 C 137) | (172 C 137)
        c_name = next(iter(rs.group_nts))
        shapes = {r.symbols for r in rs.factored}
        assert (176, c_name, 137) in shapes
        assert (172, c_name, 137) in shapes

    def test_describe_mentions_both_forms(self):
        text = build_rules(table4_chains()).describe()
        assert "P_FC" in text and "P_LALR" in text

    def test_no_shared_structure_stays_flat(self):
        chains = ChainSet(
            [FailureChain("A", (1, 2, 3)), FailureChain("B", (4, 5, 6))]
        )
        rs = build_rules(chains)
        assert rs.subchain_nts == {}
        assert rs.group_nts == {}
        assert [f.symbols for f in rs.factored] == [(1, 2, 3), (4, 5, 6)]


class TestGrammars:
    def test_flat_grammar_accepts_exactly_the_chains(self):
        rs = build_rules(table4_chains(), factor=False)
        parser = LRParser(build_tables(flat_grammar(rs), prefer_shift=True))
        fc1 = [(str(t), t) for t in (176, 177, 178, 179, 180, 137)]
        fc5 = [(str(t), t) for t in (172, 177, 178, 193, 137)]
        assert parser.parse(fc1) == "FC1"
        assert parser.parse(fc5) == "FC5"
        # Cross-product sequence is rejected by the flat grammar.
        cross = [(str(t), t) for t in (176, 177, 178, 193, 137)]
        with pytest.raises(ParseError):
            parser.parse(cross)

    def test_factored_grammar_accepts_chains_and_cross_products(self):
        rs = build_rules(table4_chains())
        parser = LRParser(build_tables(factored_grammar(rs), prefer_shift=True))
        fc1 = [(str(t), t) for t in (176, 177, 178, 179, 180, 137)]
        cross = [(str(t), t) for t in (176, 177, 178, 193, 137)]
        assert parser.parse(fc1) == "FC1"
        # The paper's P_LALR factoring accepts the generalization too.
        parser.parse(cross)

    def test_factored_requires_factoring(self):
        rs = build_rules(table4_chains(), factor=False)
        with pytest.raises(ValueError):
            factored_grammar(rs)

    def test_build_chain_tables_stats(self):
        tables = build_chain_tables(build_rules(table4_chains(), factor=False))
        stats = tables.stats()
        assert stats["productions"] == 3  # 2 chains + accept
        assert stats["terminals"] == 9  # 8 tokens + $end

    def test_every_chain_parses_under_both_backids(self):
        chains = ChainSet(
            [
                FailureChain("A", (1, 2, 3, 4)),
                FailureChain("B", (5, 2, 3, 6)),
                FailureChain("C", (7, 8)),
            ]
        )
        rs = build_rules(chains)
        for factored in (False, True):
            tables = build_chain_tables(rs, factored=factored)
            parser = LRParser(tables)
            for chain in chains:
                tokens = [(str(t), t) for t in chain.tokens]
                assert parser.parse(tokens) == chain.chain_id

    def test_shared_prefix_chains(self):
        # Chains sharing a two-token prefix must still be LALR-parsable.
        chains = ChainSet(
            [FailureChain("A", (1, 2, 3)), FailureChain("B", (1, 2, 4))]
        )
        rs = build_rules(chains, factor=False)
        parser = LRParser(build_chain_tables(rs))
        assert parser.parse([(str(t), t) for t in (1, 2, 3)]) == "A"
        assert parser.parse([(str(t), t) for t in (1, 2, 4)]) == "B"

    def test_prefix_chain_of_another(self):
        # A is a proper prefix of B; shift preference favours B, but A
        # alone still parses (reduce on $end).
        chains = ChainSet(
            [FailureChain("A", (1, 2)), FailureChain("B", (1, 2, 3))]
        )
        rs = build_rules(chains, factor=False)
        parser = LRParser(build_chain_tables(rs))
        assert parser.parse([(str(t), t) for t in (1, 2)]) == "A"
        assert parser.parse([(str(t), t) for t in (1, 2, 3)]) == "B"
