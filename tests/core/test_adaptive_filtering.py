"""Tests for AdaptiveFleet's relevant-token filtering (noisy scanners)."""

import pytest

from repro.core import ChainSet, FailureChain, LogEvent
from repro.core.adaptive import AdaptiveFleet
from repro.core.events import Severity
from repro.templates import TemplateStore


@pytest.fixture
def noisy_store():
    """Store whose scanner also emits benign tokens (the realistic
    deployment shape: one shared scanner for labeling + prediction)."""
    s = TemplateStore()
    s.add("benign heartbeat *", Severity.BENIGN, token=700)
    s.add("benign job *", Severity.BENIGN, token=701)
    s.add("anom disk *", Severity.ERRONEOUS, token=710)
    s.add("anom net *", Severity.ERRONEOUS, token=711)
    s.add("node down *", Severity.ERRONEOUS, token=790)
    return s


def episode(node, base, with_benign=True):
    msgs = []
    if with_benign:
        msgs.append("benign heartbeat ok")
    msgs.append("anom disk err")
    if with_benign:
        msgs.append("benign job done")
    msgs.append("anom net err")
    events = [LogEvent(base + 3.0 * i, node, m) for i, m in enumerate(msgs)]
    events.append(LogEvent(base + 60.0, node, "node down hard"))
    return events


def make_fleet(store, relevant=None):
    chains = ChainSet([FailureChain("FC_seed", (710, 790))])  # placeholder
    scanner = store.compile_scanner()
    return AdaptiveFleet(
        chains, scanner.tokenize, terminal_tokens={790},
        relevant_tokens=relevant, timeout=300.0, min_support=2)


class TestRelevantTokenFiltering:
    def test_unfiltered_history_pollutes_candidates(self, noisy_store):
        """Without filtering, benign tokens join the candidate, producing
        signatures that vary with benign traffic."""
        fleet = make_fleet(noisy_store, relevant=None)
        fleet.run(episode("n1", 0.0, with_benign=True))
        fleet.run(episode("n2", 10_000.0, with_benign=False))
        # Different benign interleavings → different signatures → no
        # candidate reaches support 2.
        assert fleet.adaptations == []

    def test_filtered_history_learns_reliably(self, noisy_store):
        fleet = make_fleet(noisy_store, relevant={710, 711})
        fleet.run(episode("n1", 0.0, with_benign=True))
        fleet.run(episode("n2", 10_000.0, with_benign=False))
        assert len(fleet.adaptations) == 1
        assert fleet.adaptations[0].tokens == (710, 711)

    def test_terminal_never_recorded(self, noisy_store):
        fleet = make_fleet(noisy_store, relevant={710, 711, 790})
        fleet.run(episode("n1", 0.0))
        fleet.run(episode("n2", 10_000.0))
        for event in fleet.adaptations:
            assert 790 not in event.tokens
