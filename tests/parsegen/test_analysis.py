"""Tests for NULLABLE / FIRST / FOLLOW computations."""

from repro.parsegen import END, Grammar, first_sets, follow_sets, nullable_set
from repro.parsegen.cfg import AugmentedGrammar


def dragon_grammar():
    """The expression grammar from the Dragon book (4.28)."""
    g = Grammar("E")
    g.add("E", ["T", "E'"])
    g.add("E'", ["+", "T", "E'"])
    g.add("E'", [])
    g.add("T", ["F", "T'"])
    g.add("T'", ["*", "F", "T'"])
    g.add("T'", [])
    g.add("F", ["(", "E", ")"])
    g.add("F", ["id"])
    return g


class TestNullable:
    def test_dragon(self):
        nullable = nullable_set(dragon_grammar())
        assert nullable == {"E'", "T'"}

    def test_transitively_nullable(self):
        g = Grammar("S")
        g.add("S", ["A", "B"])
        g.add("A", [])
        g.add("B", ["A", "A"])
        assert nullable_set(g) == {"S", "A", "B"}

    def test_nothing_nullable(self):
        g = Grammar("S")
        g.add("S", ["a"])
        assert nullable_set(g) == frozenset()


class TestFirst:
    def test_dragon(self):
        first = first_sets(dragon_grammar())
        assert first["E"] == {"(", "id"}
        assert first["T"] == {"(", "id"}
        assert first["F"] == {"(", "id"}
        assert first["E'"] == {"+"}
        assert first["T'"] == {"*"}

    def test_terminal_first_is_itself(self):
        first = first_sets(dragon_grammar())
        assert first["id"] == {"id"}

    def test_first_through_nullable(self):
        g = Grammar("S")
        g.add("S", ["A", "b"])
        g.add("A", ["a"])
        g.add("A", [])
        first = first_sets(g)
        assert first["S"] == {"a", "b"}


class TestFollow:
    def test_dragon(self):
        follow = follow_sets(dragon_grammar())
        assert follow["E"] == {")", END}
        assert follow["E'"] == {")", END}
        assert follow["T"] == {"+", ")", END}
        assert follow["T'"] == {"+", ")", END}
        assert follow["F"] == {"+", "*", ")", END}

    def test_follow_on_augmented(self):
        aug = AugmentedGrammar.of(dragon_grammar())
        follow = follow_sets(aug)
        assert END in follow["E"]
