"""Additional runtime/table tests: conflicts rendering, action strings,
table statistics, nullable-heavy grammars, deep stacks."""

import pytest

from repro.parsegen import (
    Action,
    ActionKind,
    ConflictError,
    Grammar,
    LRParser,
    StreamingParser,
    build_tables,
)


class TestActionRepr:
    def test_strings(self):
        assert str(Action(ActionKind.SHIFT, 7)) == "s7"
        assert str(Action(ActionKind.REDUCE, 3)) == "r3"
        assert str(Action(ActionKind.ACCEPT)) == "acc"


class TestConflictReporting:
    def test_conflict_message_contains_items(self):
        g = Grammar("S")
        g.add("S", ["if", "S"])
        g.add("S", ["if", "S", "else", "S"])
        g.add("S", ["x"])
        with pytest.raises(ConflictError) as exc_info:
            build_tables(g)
        message = str(exc_info.value)
        assert "shift/reduce" in message
        assert "•" in message  # item dump present
        assert "else" in message

    def test_conflicts_recorded_when_resolved(self):
        g = Grammar("S")
        g.add("S", ["if", "S"])
        g.add("S", ["if", "S", "else", "S"])
        g.add("S", ["x"])
        tables = build_tables(g, prefer_shift=True)
        assert len(tables.conflicts) == 1
        assert tables.conflicts[0].kind == "shift/reduce"


class TestNullableHeavyGrammars:
    def test_all_nullable(self):
        g = Grammar("S")
        g.add("S", ["A", "B", "C"], action=lambda v: "".join(filter(None, v)))
        g.add("A", ["a"], action=lambda v: "a")
        g.add("A", [], action=lambda v: "")
        g.add("B", ["b"], action=lambda v: "b")
        g.add("B", [], action=lambda v: "")
        g.add("C", ["c"], action=lambda v: "c")
        g.add("C", [], action=lambda v: "")
        parser = LRParser(build_tables(g))
        assert parser.parse([]) == ""
        assert parser.parse([("b", "b")]) == "b"
        assert parser.parse([("a", "a"), ("c", "c")]) == "ac"

    def test_nested_epsilon(self):
        g = Grammar("S")
        g.add("S", ["X", "end"])
        g.add("X", ["X", "item"])
        g.add("X", [])
        parser = LRParser(build_tables(g))
        parser.parse([("end", None)])
        parser.parse([("item", None)] * 5 + [("end", None)])


class TestDeepStacks:
    def test_right_recursion_deep(self):
        g = Grammar("L")
        g.add("L", ["x", "L"], action=lambda v: v[1] + 1)
        g.add("L", ["x"], action=lambda v: 1)
        parser = LRParser(build_tables(g))
        n = 3000
        assert parser.parse([("x", None)] * n) == n

    def test_left_recursion_constant_stack(self):
        g = Grammar("L")
        g.add("L", ["L", "x"], action=lambda v: v[0] + 1)
        g.add("L", ["x"], action=lambda v: 1)
        tables = build_tables(g)
        sp = StreamingParser(tables)
        for _ in range(5000):
            sp.feed("x", None)
        assert sp.depth <= 2  # left recursion reduces eagerly
        assert sp.finish() == 5000


class TestTableStats:
    def test_stats_shape(self):
        g = Grammar("S")
        g.add("S", ["a", "S"])
        g.add("S", ["b"])
        stats = build_tables(g).stats()
        assert stats["productions"] == 3  # incl. $accept
        assert stats["terminals"] == 3  # a, b, $end
        assert stats["nonterminals"] == 2  # S, $accept
        assert stats["states"] >= 4
        assert stats["action_entries"] > 0

    def test_expected_terminals_sorted(self):
        g = Grammar("S")
        g.add("S", ["z"])
        g.add("S", ["a"])
        tables = build_tables(g)
        assert tables.expected_terminals(0) == ["a", "z"]
