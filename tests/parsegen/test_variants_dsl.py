"""Tests for SLR/canonical-LR variants and the grammar DSL."""

import pytest

from repro.parsegen import ConflictError, Grammar, LRParser, build_tables
from repro.parsegen.dsl import GrammarSyntaxError, format_grammar, parse_grammar
from repro.parsegen.variants import build_canonical_lr1_tables, build_slr_tables


def expr_text():
    return """
    %start E
    E : E '+' T | T ;
    T : T '*' F | F ;
    F : '(' E ')' | num ;
    """


def lalr_not_slr():
    # Dragon-book grammar: LALR(1) but not SLR(1).
    g = Grammar("S")
    g.add("S", ["L", "=", "R"])
    g.add("S", ["R"])
    g.add("L", ["*", "R"])
    g.add("L", ["id"])
    g.add("R", ["L"])
    return g


def lr1_not_lalr():
    # Classic LR(1)-but-not-LALR(1) grammar (reduce/reduce after merge).
    g = Grammar("S")
    g.add("S", ["a", "A", "d"])
    g.add("S", ["b", "B", "d"])
    g.add("S", ["a", "B", "e"])
    g.add("S", ["b", "A", "e"])
    g.add("A", ["c"])
    g.add("B", ["c"])
    return g


class TestDSL:
    def test_parse_expression_grammar(self):
        g = parse_grammar(expr_text())
        assert g.start == "E"
        assert len(g.productions) == 6
        assert g.terminals == {"+", "*", "(", ")", "num"}

    def test_parsed_grammar_builds_working_parser(self):
        g = parse_grammar(expr_text())
        parser = LRParser(build_tables(g))
        parser.parse([(t, t) for t in ["num", "+", "num", "*", "num"]])

    def test_default_start_is_first_rule(self):
        g = parse_grammar("A : 'x' B ; B : 'y' ;")
        assert g.start == "A"

    def test_epsilon_alternatives(self):
        g = parse_grammar("S : 'a' S | ;")
        parser = LRParser(build_tables(g))
        parser.parse([])
        parser.parse([("a", "a"), ("a", "a")])

    def test_comments_ignored(self):
        g = parse_grammar("# header\nS : 'x' ; # trailing\n")
        assert len(g.productions) == 1

    @pytest.mark.parametrize("bad", [
        "", "S 'x' ;", "S : 'x'", ": 'x' ;", "%start\nS : 'x' ;",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar(bad)

    def test_undefined_start_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("%start Missing\nS : 'x' ;")

    def test_roundtrip(self):
        g = parse_grammar(expr_text())
        text = format_grammar(g)
        g2 = parse_grammar(text)
        assert [(p.lhs, p.rhs) for p in g.productions] == \
               [(p.lhs, p.rhs) for p in g2.productions]
        assert g.start == g2.start


class TestSLR:
    def test_slr_handles_expression_grammar(self):
        g = parse_grammar(expr_text())
        parser = LRParser(build_slr_tables(g))
        parser.parse([(t, t) for t in ["(", "num", ")", "*", "num"]])

    def test_slr_rejects_lalr_grammar(self):
        with pytest.raises(ConflictError):
            build_slr_tables(lalr_not_slr())

    def test_lalr_accepts_it(self):
        build_tables(lalr_not_slr())  # must not raise


class TestCanonicalLR1:
    def test_handles_slr_grammar(self):
        g = parse_grammar(expr_text())
        parser = LRParser(build_canonical_lr1_tables(g))
        parser.parse([(t, t) for t in ["num", "+", "num"]])

    def test_handles_lalr_grammar(self):
        parser = LRParser(build_canonical_lr1_tables(lalr_not_slr()))
        parser.parse([(t, t) for t in ["*", "id", "=", "id"]])

    def test_accepts_lr1_but_not_lalr_grammar(self):
        g = lr1_not_lalr()
        with pytest.raises(ConflictError):
            build_tables(g)  # LALR merge creates reduce/reduce
        parser = LRParser(build_canonical_lr1_tables(g))
        parser.parse([(t, t) for t in ["a", "c", "d"]])
        parser.parse([(t, t) for t in ["b", "c", "e"]])

    def test_state_count_ordering(self):
        # Canonical LR(1) has ≥ as many states as the LR(0)/LALR core.
        g = parse_grammar(expr_text())
        lalr = build_tables(g)
        lr1 = build_canonical_lr1_tables(g)
        assert lr1.n_states >= lalr.n_states

    def test_same_language_as_lalr(self):
        g = parse_grammar(expr_text())
        lalr = LRParser(build_tables(g))
        lr1 = LRParser(build_canonical_lr1_tables(g))
        streams = [
            ["num"], ["num", "+", "num"], ["(", "num", ")"],
            ["num", "*", "(", "num", "+", "num", ")"],
        ]
        for stream in streams:
            tokens = [(t, t) for t in stream]
            lalr.parse(tokens)
            lr1.parse(tokens)
        from repro.parsegen import ParseError
        for bad in [["+"], ["num", "num"], ["(", "num"]]:
            tokens = [(t, t) for t in bad]
            with pytest.raises(ParseError):
                lalr.parse(tokens)
            with pytest.raises(ParseError):
                lr1.parse(tokens)
