"""Generative round-trip tests: sampled sentences must parse."""

import pytest

try:
    import numpy as np
except ImportError:  # no-numpy leg: stdlib-RNG tests still run
    np = None

requires_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")

from repro.parsegen import Grammar, LRParser, build_tables, parse_grammar
from repro.parsegen.sampling import (
    UnproductiveGrammarError,
    sample_sentence,
    sample_sentences,
)


GRAMMAR_TEXTS = [
    # Arithmetic expressions.
    """
    E : E '+' T | T ;
    T : T '*' F | F ;
    F : '(' E ')' | num ;
    """,
    # Balanced parens with epsilon.
    """
    S : '(' S ')' S | ;
    """,
    # Lists.
    """
    List : List ',' item | item ;
    """,
    # Statements with nesting.
    """
    Stmt : 'if' Expr 'then' Stmt 'else' Stmt | 'print' Expr ;
    Expr : Expr 'or' Term | Term ;
    Term : 'true' | 'false' ;
    """,
]


@pytest.mark.parametrize("text", GRAMMAR_TEXTS)
def test_sampled_sentences_parse(text):
    grammar = parse_grammar(text)
    parser = LRParser(build_tables(grammar, prefer_shift=True))
    for sentence in sample_sentences(grammar, 40, seed=5):
        parser.parse([(t, t) for t in sentence])


def test_sampling_is_seeded(gram_text=GRAMMAR_TEXTS[0]):
    grammar = parse_grammar(gram_text)
    a = sample_sentences(grammar, 10, seed=3)
    b = sample_sentences(grammar, 10, seed=3)
    assert a == b


def test_sampling_variety():
    grammar = parse_grammar(GRAMMAR_TEXTS[0])
    sentences = sample_sentences(grammar, 50, seed=1)
    assert len({tuple(s) for s in sentences}) > 5


@requires_numpy
def test_depth_bound_terminates():
    # Heavily recursive grammar still terminates quickly.
    grammar = parse_grammar("S : S S 'x' | 'x' ;")
    rng = np.random.default_rng(0)
    for _ in range(20):
        sentence = sample_sentence(grammar, rng, soft_depth=6)
        assert sentence.count("x") == len(sentence)


def test_unproductive_grammar_detected():
    from repro.parsegen.sampling import _StdlibGenerator

    g = Grammar("S")
    g.add("S", ["S", "x"])  # no base case: derives nothing
    with pytest.raises(UnproductiveGrammarError):
        sample_sentence(g, _StdlibGenerator(0))


def test_stdlib_generator_sentences_parse():
    # The numpy-free RNG path drives the same sampler and its output
    # must still round-trip through the parser.
    from repro.parsegen.sampling import _StdlibGenerator

    grammar = parse_grammar(GRAMMAR_TEXTS[0])
    parser = LRParser(build_tables(grammar, prefer_shift=True))
    rng = _StdlibGenerator(11)
    for _ in range(25):
        sentence = sample_sentence(grammar, rng)
        parser.parse([(t, t) for t in sentence])


@requires_numpy
def test_max_tokens_caps_length():
    grammar = parse_grammar("S : '(' S ')' S | ;")
    rng = np.random.default_rng(7)
    sentence = sample_sentence(grammar, rng, soft_depth=40, max_tokens=50)
    # May exceed slightly while finishing minimally, but stays bounded.
    assert len(sentence) < 500
    # And it still parses.
    parser = LRParser(build_tables(grammar, prefer_shift=True))
    parser.parse([(t, t) for t in sentence])


def test_chain_grammar_roundtrip():
    """The Aarohi-generated chain grammars round-trip too."""
    from repro.core import ChainSet, FailureChain, build_rules
    from repro.core.grammar_builder import flat_grammar

    chains = ChainSet([
        FailureChain("A", (1, 2, 3)),
        FailureChain("B", (4, 2, 5, 6)),
    ])
    grammar = flat_grammar(build_rules(chains, factor=False))
    parser = LRParser(build_tables(grammar, prefer_shift=True))
    for sentence in sample_sentences(grammar, 10, seed=2):
        chain_id = parser.parse([(t, int(t)) for t in sentence])
        assert chain_id in ("A", "B")
