"""Property test: StreamingParser rejection is side-effect free.

Guards the trial-commit rewrite of :meth:`StreamingParser.feed`: a feed
that returns ``ERROR`` must leave the configuration — state stack,
semantic values, current state, ``result``, ``accepted`` — untouched,
and semantic actions must not have run.  Algorithm 2's "skip unexpected
phrases" depends on this; a leaked reduce would corrupt every
subsequent chain check.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parsegen import FeedResult, Grammar, StreamingParser, build_tables


def arithmetic_tables():
    """A reduce-heavy grammar (expressions) so rejected feeds happen in
    configurations with pending reduces on the stack."""
    g = Grammar("E")
    g.add("E", ["E", "+", "T"], action=lambda v: v[0] + v[2])
    g.add("E", ["T"])
    g.add("T", ["T", "*", "F"], action=lambda v: v[0] * v[2])
    g.add("T", ["F"])
    g.add("F", ["(", "E", ")"], action=lambda v: v[1])
    g.add("F", ["n"])
    return build_tables(g)


TABLES = arithmetic_tables()
TERMINALS = ["n", "+", "*", "(", ")"]


def snapshot(parser):
    return (
        [(e.state, e.value) for e in parser._stack],
        parser.state,
        parser.result,
        parser.accepted,
    )


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(TERMINALS), min_size=0, max_size=40))
def test_rejected_feed_leaves_configuration_unchanged(offers):
    parser = StreamingParser(TABLES)
    for terminal in offers:
        before = snapshot(parser)
        result = parser.feed(terminal, 2)
        if result is FeedResult.ERROR:
            assert snapshot(parser) == before
        else:
            # Sanity: a viable feed did make progress.
            assert result is FeedResult.SHIFTED
            assert parser._stack[-1].state >= 0


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(TERMINALS), min_size=0, max_size=40))
def test_rejecting_actions_never_run(offers):
    """Semantic actions fire only on committed reduces: replaying just
    the accepted tokens through a fresh parser gives the same stack."""
    parser = StreamingParser(TABLES)
    accepted = []
    for terminal in offers:
        if parser.feed(terminal, 2) is FeedResult.SHIFTED:
            accepted.append(terminal)
    replay = StreamingParser(TABLES)
    for terminal in accepted:
        assert replay.feed(terminal, 2) is FeedResult.SHIFTED
    assert snapshot(replay) == snapshot(parser)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(TERMINALS), min_size=0, max_size=30))
def test_would_accept_agrees_with_feed(offers):
    """would_accept(t) is exactly 'feed(t) would not error'."""
    parser = StreamingParser(TABLES)
    for terminal in offers:
        for probe in TERMINALS:
            viable = parser.would_accept(probe)
            shadow_before = snapshot(parser)
            # Probing must never mutate either.
            assert snapshot(parser) == shadow_before
            if probe == terminal:
                result = parser.feed(terminal, 2)
                assert (result is not FeedResult.ERROR) == viable
