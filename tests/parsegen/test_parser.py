"""End-to-end LALR(1) parser generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parsegen import (
    ConflictError,
    FeedResult,
    Grammar,
    GrammarError,
    LRParser,
    ParseError,
    StreamingParser,
    build_tables,
)


def expression_grammar():
    """LALR expression grammar with evaluating semantic actions."""
    g = Grammar("E")
    g.add("E", ["E", "+", "T"], action=lambda v: v[0] + v[2])
    g.add("E", ["E", "-", "T"], action=lambda v: v[0] - v[2])
    g.add("E", ["T"], action=lambda v: v[0])
    g.add("T", ["T", "*", "F"], action=lambda v: v[0] * v[2])
    g.add("T", ["F"], action=lambda v: v[0])
    g.add("F", ["(", "E", ")"], action=lambda v: v[1])
    g.add("F", ["num"], action=lambda v: v[0])
    return g


def tokenize_expr(text):
    out = []
    for part in text.split():
        if part.isdigit():
            out.append(("num", int(part)))
        else:
            out.append((part, part))
    return out


@pytest.fixture(scope="module")
def expr_parser():
    return LRParser(build_tables(expression_grammar()))


class TestExpressionParsing:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1", 1),
            ("1 + 2", 3),
            ("2 * 3 + 4", 10),
            ("2 + 3 * 4", 14),
            ("( 2 + 3 ) * 4", 20),
            ("10 - 2 - 3", 5),  # left associativity
            ("2 * ( 3 + 4 ) * 5", 70),
        ],
    )
    def test_evaluates(self, expr_parser, text, value):
        assert expr_parser.parse(tokenize_expr(text)) == value

    @pytest.mark.parametrize("text", ["+", "1 +", "( 1", "1 2", ") 1", ""])
    def test_rejects(self, expr_parser, text):
        with pytest.raises(ParseError):
            expr_parser.parse(tokenize_expr(text))

    def test_error_reports_expected(self, expr_parser):
        with pytest.raises(ParseError) as exc_info:
            expr_parser.parse(tokenize_expr("1 + +"))
        assert "num" in exc_info.value.expected
        assert "(" in exc_info.value.expected


class TestGrammarValidation:
    def test_undefined_start(self):
        with pytest.raises(GrammarError):
            build_tables(Grammar("S"))

    def test_unreachable_nonterminal(self):
        g = Grammar("S")
        g.add("S", ["a"])
        g.add("X", ["b"])
        with pytest.raises(GrammarError, match="unreachable"):
            build_tables(g)

    def test_reserved_symbols_rejected(self):
        g = Grammar("S")
        with pytest.raises(GrammarError):
            g.add("S", ["$end"])
        with pytest.raises(GrammarError):
            g.add("$accept", ["a"])


class TestConflicts:
    def test_dangling_else_conflict(self):
        g = Grammar("S")
        g.add("S", ["if", "S"])
        g.add("S", ["if", "S", "else", "S"])
        g.add("S", ["x"])
        with pytest.raises(ConflictError) as exc_info:
            build_tables(g)
        assert any(c.kind == "shift/reduce" for c in exc_info.value.conflicts)

    def test_dangling_else_prefer_shift(self):
        g = Grammar("S")
        g.add("S", ["if", "S"], action=lambda v: ("if", v[1]))
        g.add("S", ["if", "S", "else", "S"], action=lambda v: ("ifelse", v[1], v[3]))
        g.add("S", ["x"], action=lambda v: "x")
        tables = build_tables(g, prefer_shift=True)
        parser = LRParser(tables)
        # else binds to the nearest if, bison-style.
        result = parser.parse([(t, t) for t in ["if", "if", "x", "else", "x"]])
        assert result == ("if", ("ifelse", "x", "x"))

    def test_reduce_reduce_conflict(self):
        g = Grammar("S")
        g.add("S", ["A"])
        g.add("S", ["B"])
        g.add("A", ["x"])
        g.add("B", ["x"])
        with pytest.raises(ConflictError) as exc_info:
            build_tables(g)
        assert any(c.kind == "reduce/reduce" for c in exc_info.value.conflicts)

    def test_lalr_but_not_slr_grammar(self):
        # Classic grammar that is LALR(1) but not SLR(1) (Dragon 4.48-ish).
        g = Grammar("S")
        g.add("S", ["L", "=", "R"])
        g.add("S", ["R"])
        g.add("L", ["*", "R"])
        g.add("L", ["id"])
        g.add("R", ["L"])
        tables = build_tables(g)  # must not raise
        parser = LRParser(tables)
        parser.parse([(t, t) for t in ["id", "=", "*", "id"]])
        parser.parse([(t, t) for t in ["*", "*", "id"]])


class TestStreamingParser:
    def test_feed_and_finish(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        for terminal, value in tokenize_expr("1 + 2 * 3"):
            assert sp.feed(terminal, value) is FeedResult.SHIFTED
        assert sp.finish() == 7

    def test_rejection_is_nondestructive(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        sp.feed("num", 5)
        depth_before = sp.depth
        assert sp.feed(")", ")") is FeedResult.ERROR
        assert sp.depth == depth_before
        # Parser still usable after rejection.
        assert sp.feed("+", "+") is FeedResult.SHIFTED
        sp.feed("num", 3)
        assert sp.finish() == 8

    def test_would_accept(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        assert sp.would_accept("num")
        assert sp.would_accept("(")
        assert not sp.would_accept("+")
        sp.feed("num", 1)
        assert sp.would_accept("+")
        assert not sp.would_accept("num")

    def test_reset(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        sp.feed("num", 1)
        sp.feed("+", "+")
        sp.reset()
        assert sp.depth == 0
        sp.feed("num", 9)
        assert sp.finish() == 9

    def test_feed_after_accept_errors(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        sp.feed("num", 1)
        sp.finish()
        assert sp.accepted
        assert sp.feed("num", 2) is FeedResult.ERROR

    def test_finish_on_incomplete_raises(self):
        tables = build_tables(expression_grammar())
        sp = StreamingParser(tables)
        sp.feed("num", 1)
        sp.feed("+", "+")
        with pytest.raises(ParseError):
            sp.finish()


class TestChainGrammars:
    """Grammar shapes that Aarohi generates: flat token chains."""

    def test_single_chain(self):
        g = Grammar("FC")
        g.add("FC", ["t1", "t2", "t3"], action=lambda v: tuple(v))
        parser = LRParser(build_tables(g))
        assert parser.parse([(t, t) for t in ["t1", "t2", "t3"]]) == ("t1", "t2", "t3")

    def test_alternative_chains_with_shared_prefix(self):
        # FC1: 176 177 178 179 180 137 / FC5: 172 177 178 193 137 (Table IV)
        g = Grammar("FC")
        g.add("FC", ["176", "C1", "137"], action=lambda v: "FC1")
        g.add("FC", ["172", "C2", "137"], action=lambda v: "FC5")
        g.add("C1", ["B", "179", "180"])
        g.add("C2", ["B", "193"])
        g.add("B", ["177", "178"])
        parser = LRParser(build_tables(g))
        assert parser.parse([(t, t) for t in "176 177 178 179 180 137".split()]) == "FC1"
        assert parser.parse([(t, t) for t in "172 177 178 193 137".split()]) == "FC5"

    def test_long_chain(self):
        g = Grammar("FC")
        symbols = [f"t{i}" for i in range(500)]
        g.add("FC", symbols)
        parser = LRParser(build_tables(g))
        parser.parse([(s, s) for s in symbols])

    def test_many_chains(self):
        g = Grammar("FC")
        for c in range(40):
            g.add("FC", [f"c{c}_t{i}" for i in range(12)], action=lambda v, c=c: c)
        parser = LRParser(build_tables(g))
        assert parser.parse([(f"c7_t{i}", None) for i in range(12)]) == 7


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
def test_arith_matches_python(a, b, c):
    parser = LRParser(build_tables(expression_grammar()))
    text = f"{a} + {b} * {c}"
    assert parser.parse(tokenize_expr(text)) == a + b * c
