"""Integration tests for the Fig. 6 workflow object."""

import pytest

from repro.codegen import load_predictor
from repro.logsim import ClusterLogGenerator, HPC3
from repro.workflow import AarohiWorkflow


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=33)


@pytest.fixture(scope="module")
def trained(gen):
    train = gen.generate_window(
        duration=14_400.0, n_nodes=64, n_failures=30)
    return AarohiWorkflow.train(
        train.events, gen.store, timeout=gen.recommended_timeout,
        system="HPC3")


class TestTraining:
    def test_chains_mined(self, trained, gen):
        assert len(trained.bundle.chains) >= len(gen.trained_defs) - 1
        assert trained.bundle.system == "HPC3"

    def test_rules_describe(self, trained):
        rule_set = trained.rules()
        text = rule_set.describe()
        assert "P_FC" in text

    def test_lstm_variant(self, gen):
        train = gen.generate_window(
            duration=7200.0, n_nodes=40, n_failures=14)
        wf = AarohiWorkflow.train(
            train.events, gen.store, use_lstm=True, lstm_epochs=5)
        assert len(wf.bundle.chains) >= 1


class TestDeployment:
    def test_compile_writes_standalone(self, trained, tmp_path):
        path = tmp_path / "binary.py"
        source = trained.compile(path)
        assert path.read_text() == source
        module = load_predictor(source)
        chain = next(iter(trained.bundle.chains))
        predictor = module.Predictor()
        result = None
        for i, token in enumerate(chain.tokens):
            result = predictor.feed_token(token, float(i))
        assert result == chain.chain_id

    def test_save_load_roundtrip(self, trained, tmp_path):
        path = tmp_path / "bundle.json"
        trained.save(path)
        loaded = AarohiWorkflow.load(path)
        assert len(loaded.bundle.chains) == len(trained.bundle.chains)


class TestEvaluation:
    def test_evaluate_on_fresh_window(self, trained, gen):
        test = gen.generate_window(
            duration=10_800.0, n_nodes=48, n_failures=16)
        result = trained.evaluate(test.events, test.failures, test.nodes)
        summary = result.summary()
        assert summary["recall"] >= 60.0
        assert summary["precision"] >= 75.0
        assert summary["mean_lead_time_s"] > 60.0
        assert summary["mean_prediction_time_s"] < 0.05
        assert summary["true_positives"] >= 10

    def test_predict_returns_report(self, trained, gen):
        test = gen.generate_window(duration=1800.0, n_nodes=8, n_failures=2)
        report = trained.predict(test.events)
        assert report.lines_seen == len(test.events)
