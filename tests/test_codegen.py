"""Tests for the standalone predictor code generator."""

import numpy as np
import pytest

from repro.codegen import emit_predictor_source, load_predictor
from repro.core import AarohiPredictor
from repro.logsim import ClusterLogGenerator, HPC3


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=77)


@pytest.fixture(scope="module")
def generated(gen):
    source = emit_predictor_source(gen.chains, gen.store, timeout=240.0)
    return source, load_predictor(source)


class TestGeneratedSource:
    def test_source_is_self_contained(self, generated):
        source, _module = generated
        assert "import" not in source.split('"""', 2)[2].split("def")[0]
        assert "repro" not in source.replace("repro.codegen", "")

    def test_compiles_and_exposes_api(self, generated):
        _source, module = generated
        assert callable(module.tokenize)
        assert callable(module.Predictor)
        assert isinstance(module.CHAINS, list)

    def test_chains_baked_in(self, generated, gen):
        _source, module = generated
        baked = {cid: tokens for cid, tokens in module.CHAINS}
        for chain in gen.chains:
            assert baked[chain.chain_id] == tuple(chain.tokens)


class TestEquivalence:
    def test_tokenize_matches_library_scanner(self, generated, gen):
        _source, module = generated
        scanner = gen.store.compile_scanner(keep=gen.chains.token_set)
        rng = np.random.default_rng(5)
        messages = [
            entry.make(rng, "c0-0c0s0n0")
            for entry in (*gen.catalog.anomalies, *gen.catalog.benign)
        ] * 3
        for message in messages:
            lib_token = scanner.tokenize(message)
            lib_token = (
                lib_token if lib_token in gen.chains.token_set else None
            ) if lib_token is not None else None
            assert module.tokenize(message) == lib_token, message

    def test_predictions_match_library(self, generated, gen):
        _source, module = generated
        window = gen.generate_window(
            duration=3600.0, n_nodes=8, n_failures=3, n_spurious=1)
        lib = AarohiPredictor.from_store(gen.chains, gen.store, timeout=240.0)
        standalone = module.Predictor()
        lib_flags, gen_flags = [], []
        node = window.failures[0].node
        for event in window.events:
            if event.node != node:
                continue
            p = lib.process(event)
            if p:
                lib_flags.append((p.chain_id, p.flagged_at))
            cid = standalone.feed(event.message, event.time)
            if cid:
                gen_flags.append((cid, event.time))
        assert lib_flags == gen_flags
        assert lib_flags, "expected at least one prediction on a failing node"

    def test_reset(self, generated, gen):
        _source, module = generated
        predictor = module.Predictor()
        chain = next(iter(gen.chains))
        for i, token in enumerate(chain.tokens[:-1]):
            predictor.feed_token(token, float(i))
        predictor.reset()
        assert predictor.feed_token(chain.tokens[-1], 99.0) is None

    def test_timeout_semantics(self, generated, gen):
        _source, module = generated
        predictor = module.Predictor()
        chain = next(iter(gen.chains))
        predictor.feed_token(chain.tokens[0], 0.0)
        # Gap beyond the baked-in 240 s timeout aborts the chain.
        assert predictor.feed_token(chain.tokens[1], 1000.0) is None
        for i, token in enumerate(chain.tokens[1:], start=1):
            result = predictor.feed_token(token, 1000.0 + i)
        assert result is None  # chain restarted mid-way, cannot complete


class TestRoundtripToDisk:
    def test_write_and_reload(self, generated, tmp_path, gen):
        source, _module = generated
        path = tmp_path / "aarohi_hpc3.py"
        path.write_text(source)
        reloaded = load_predictor(path.read_text(), name="reloaded")
        chain = next(iter(gen.chains))
        predictor = reloaded.Predictor()
        result = None
        for i, token in enumerate(chain.tokens):
            result = predictor.feed_token(token, float(i))
        assert result == chain.chain_id
