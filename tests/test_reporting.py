"""Tests for the text table/series renderers."""

import pytest

from repro.reporting import render_bars, render_series, render_table


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "xx" in out and "2.5" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment(self):
        out = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[1]) or len(lines[-1]) >= len(lines[0])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_multi_series(self):
        out = render_series(
            "len",
            {"Aarohi": [(1, 0.05), (10, 0.2)], "Desh": [(1, 0.12), (10, 1.8)]},
        )
        assert "Aarohi" in out and "Desh" in out
        assert "0.05" in out and "1.8" in out

    def test_missing_points_dashed(self):
        out = render_series("x", {"a": [(1, 1.0)], "b": [(2, 2.0)]})
        assert "—" in out


class TestGoldenOutputs:
    """Byte-exact renderings: layout changes must be deliberate."""

    def test_table_golden(self):
        assert render_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]]) == "\n".join([
            "a  | bb ",
            "---+----",
            "1  | 2.5",
            "xx | 3  ",
        ])

    def test_table_with_title_golden(self):
        out = render_table(
            ["sys", "ev/s"], [["HPC1", 1234567.0]], title="Throughput")
        assert out == "\n".join([
            "Throughput",
            "================",
            "sys  | ev/s     ",
            "-----+----------",
            "HPC1 | 1.235e+06",
        ])

    def test_series_golden(self):
        out = render_series(
            "x", {"a": [(1, 0.5)], "b": [(1, 1.0), (2, 2.0)]},
            y_fmt="{:.2f}")
        assert out == "\n".join([
            "x | a    | b   ",
            "--+------+-----",
            "1 | 0.50 | 1.00",
            "2 | —    | 2.00",
        ])

    def test_bars_golden(self):
        out = render_bars(
            ["mem", "dfa"], [1.0, 4.0], title="Funnel", width=8,
            value_fmt="{:.1f}")
        assert out == "\n".join([
            "Funnel",
            "mem | ## 1.0",
            "dfa | ######## 4.0",
        ])


class TestRenderBars:
    def test_bars_scale(self):
        out = render_bars(["a", "b"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "a" in out
