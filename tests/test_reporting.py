"""Tests for the text table/series renderers."""

import pytest

from repro.reporting import render_bars, render_series, render_table


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "xx" in out and "2.5" in out

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment(self):
        out = render_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[1]) or len(lines[-1]) >= len(lines[0])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_multi_series(self):
        out = render_series(
            "len",
            {"Aarohi": [(1, 0.05), (10, 0.2)], "Desh": [(1, 0.12), (10, 1.8)]},
        )
        assert "Aarohi" in out and "Desh" in out
        assert "0.05" in out and "1.8" in out

    def test_missing_points_dashed(self):
        out = render_series("x", {"a": [(1, 1.0)], "b": [(2, 2.0)]})
        assert "—" in out


class TestRenderBars:
    def test_bars_scale(self):
        out = render_bars(["a", "b"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "a" in out
