"""Tests for longitudinal campaign simulation."""

import pytest

from repro.analysis import (
    fit_weibull,
    inter_failure_stats,
    inter_failure_times,
    run_campaign,
    spatial_correlation,
)
from repro.logsim import HPC4


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(
        HPC4, windows=6, duration=3600.0, n_nodes=24,
        failures_per_window=5, seed=13)


class TestCampaign:
    def test_counts(self, campaign):
        assert campaign.windows == 6
        assert len(campaign.failures) == 30
        assert campaign.total_duration == 6 * 3600.0

    def test_recall_in_band(self, campaign):
        # HPC4 novel fraction is 0.134: recall should sit near 1 - that.
        assert 0.7 <= campaign.recall <= 1.0

    def test_accounting_consistent(self, campaign):
        assert len(campaign.matched) + len(campaign.missed) == len(campaign.failures)

    def test_windows_are_time_ordered(self, campaign):
        times = [f.time for f in campaign.failures]
        # Failures span multiple windows (not all in the first one).
        assert max(times) > 3600.0

    def test_campaign_feeds_field_statistics(self, campaign):
        stats = inter_failure_stats(campaign.failures)
        assert stats.count == 30
        assert stats.mtbf > 0
        gaps = inter_failure_times(campaign.failures)
        fit = fit_weibull(gaps)
        assert fit.shape > 0
        corr = spatial_correlation(campaign.failures, level="cabinet")
        assert corr.expected_pairs >= 0

    def test_reproducible(self):
        a = run_campaign(HPC4, windows=2, duration=1800.0, n_nodes=10,
                         failures_per_window=3, seed=9)
        b = run_campaign(HPC4, windows=2, duration=1800.0, n_nodes=10,
                         failures_per_window=3, seed=9)
        assert [(f.node, f.time) for f in a.failures] == \
               [(f.node, f.time) for f in b.failures]
