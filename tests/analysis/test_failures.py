"""Tests for the field-study statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    failures_by_chain,
    fit_exponential,
    fit_weibull,
    inter_failure_stats,
    inter_failure_times,
    spatial_correlation,
)
from repro.core.events import NodeFailure


def failures_at(times, nodes=None):
    nodes = nodes or [f"c0-0c0s{i % 16}n{i % 4}" for i in range(len(times))]
    return [NodeFailure(node=n, time=t) for n, t in zip(nodes, times)]


class TestInterFailure:
    def test_gaps(self):
        gaps = inter_failure_times(failures_at([10.0, 30.0, 35.0]))
        assert list(gaps) == [20.0, 5.0]

    def test_unsorted_input_handled(self):
        gaps = inter_failure_times(failures_at([35.0, 10.0, 30.0]))
        assert list(gaps) == [20.0, 5.0]

    def test_stats(self):
        stats = inter_failure_stats(failures_at([0.0, 100.0, 200.0, 300.0]))
        assert stats.mtbf == 100.0
        assert stats.median == 100.0
        assert stats.cv == 0.0
        assert stats.failures_per_day == pytest.approx(864.0)

    def test_single_failure(self):
        stats = inter_failure_stats(failures_at([5.0]))
        assert stats.count == 1 and stats.mtbf == 0.0

    def test_poisson_cv_near_one(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(50.0, 2000))
        stats = inter_failure_stats(failures_at(list(times)))
        assert 0.9 < stats.cv < 1.1


class TestFits:
    def test_exponential_recovers_rate(self):
        rng = np.random.default_rng(1)
        gaps = rng.exponential(1.0 / 0.02, 5000)
        rate, ll = fit_exponential(gaps)
        assert rate == pytest.approx(0.02, rel=0.05)
        assert np.isfinite(ll)

    def test_weibull_recovers_parameters(self):
        rng = np.random.default_rng(2)
        for true_shape in (0.7, 1.0, 1.8):
            gaps = rng.weibull(true_shape, 4000) * 100.0
            fit = fit_weibull(gaps)
            assert fit.shape == pytest.approx(true_shape, rel=0.08)
            assert fit.scale == pytest.approx(100.0, rel=0.08)

    def test_weibull_clustered_flag(self):
        rng = np.random.default_rng(3)
        clustered = fit_weibull(rng.weibull(0.6, 3000) * 10)
        assert clustered.clustered
        regular = fit_weibull(rng.weibull(2.0, 3000) * 10)
        assert not regular.clustered

    def test_weibull_beats_exponential_on_weibull_data(self):
        rng = np.random.default_rng(4)
        gaps = rng.weibull(0.6, 3000) * 50.0
        _rate, ll_exp = fit_exponential(gaps)
        fit = fit_weibull(gaps)
        assert fit.log_likelihood > ll_exp

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_exponential(np.array([]))
        with pytest.raises(ValueError):
            fit_weibull(np.array([1.0]))

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.5, 3.0), st.integers(200, 800))
    def test_weibull_fit_converges(self, shape, n):
        rng = np.random.default_rng(int(shape * 1000) + n)
        gaps = rng.weibull(shape, n) * 10.0
        fit = fit_weibull(gaps)
        assert 0.1 < fit.shape < 10.0
        assert fit.scale > 0


class TestSpatialCorrelation:
    def test_clustered_failures_detected(self):
        # 6 failures on the same blade: maximal co-location.
        nodes = [f"c0-0c0s0n{i % 4}" for i in range(6)]
        failures = [NodeFailure(node=n, time=float(i)) for i, n in enumerate(nodes)]
        corr = spatial_correlation(failures, level="blade", n_locations=100)
        assert corr.observed_pairs == 15
        assert corr.ratio > 10.0

    def test_spread_failures_not_clustered(self):
        nodes = [f"c{i}-0c0s0n0" for i in range(10)]
        failures = [NodeFailure(node=n, time=float(i)) for i, n in enumerate(nodes)]
        corr = spatial_correlation(failures, level="cabinet", n_locations=10)
        assert corr.observed_pairs == 0

    def test_too_few(self):
        corr = spatial_correlation([NodeFailure("c0-0c0s0n0", 1.0)])
        assert corr.ratio == 0.0

    def test_bad_level(self):
        failures = failures_at([1.0, 2.0])
        with pytest.raises(ValueError):
            spatial_correlation(failures, level="rack")


class TestByChain:
    def test_counts(self):
        failures = [
            NodeFailure("a", 1.0, chain_id="FC_dvs"),
            NodeFailure("b", 2.0, chain_id="FC_dvs"),
            NodeFailure("c", 3.0, chain_id="FC_mce"),
            NodeFailure("d", 4.0),
        ]
        counts = failures_by_chain(failures)
        assert counts == {"FC_dvs": 2, "FC_mce": 1, "unknown": 1}
