"""Tests for the corruption-injection harness."""

import numpy as np
import pytest

from repro.core.events import LogEvent
from repro.logsim import (
    CorruptionReport,
    CorruptionSpec,
    corrupt_events,
    corrupt_lines,
    corrupt_window,
)


def ev(t, node="c0-0c0s0n0", msg="hello world"):
    return LogEvent(time=t, node=node, message=msg)


def stream(n=50, nodes=4):
    return [ev(float(i), node=f"c0-0c0s0n{i % nodes}", msg=f"msg {i}")
            for i in range(n)]


class TestSpec:
    def test_default_is_noop(self):
        assert not CorruptionSpec().enabled

    def test_all_kinds_enabled(self):
        spec = CorruptionSpec.all_kinds(0.05)
        assert spec.enabled
        assert spec.truncate_p == spec.garble_p == spec.drop_p == 0.05
        assert spec.skew_max_s > 0

    def test_all_kinds_zero_p_is_noop(self):
        # p=0 must disable skew too, so the spec is a true passthrough.
        assert not CorruptionSpec.all_kinds(0.0).enabled

    @pytest.mark.parametrize("kwargs", [
        {"truncate_p": -0.1},
        {"garble_p": 1.5},
        {"reorder_max_s": -1.0},
        {"skew_max_s": -0.5},
        {"drop_burst": 0},
    ])
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CorruptionSpec(**kwargs)


class TestPassthrough:
    def test_zero_spec_is_byte_identical(self):
        events = stream()
        lines, report = corrupt_window(events, CorruptionSpec(), seed=3)
        assert lines == [e.to_line() for e in events]
        assert report.total_faults == 0
        assert report.events_in == report.events_out == len(events)

    def test_all_kinds_zero_p_is_byte_identical(self):
        events = stream()
        lines, report = corrupt_window(
            events, CorruptionSpec.all_kinds(0.0), seed=3)
        assert lines == [e.to_line() for e in events]
        assert report.total_faults == 0


class TestDeterminism:
    def test_same_seed_same_output(self):
        events = stream(200)
        spec = CorruptionSpec.all_kinds(0.1)
        a, ra = corrupt_window(events, spec, seed=11)
        b, rb = corrupt_window(events, spec, seed=11)
        assert a == b
        assert ra.as_dict() == rb.as_dict()

    def test_different_seed_different_output(self):
        events = stream(200)
        spec = CorruptionSpec.all_kinds(0.1)
        a, _ = corrupt_window(events, spec, seed=11)
        b, _ = corrupt_window(events, spec, seed=12)
        assert a != b


class TestEventKinds:
    def test_drops_remove_bursts(self):
        events = stream(500)
        report = CorruptionReport()
        out = corrupt_events(
            events, CorruptionSpec(drop_p=0.02, drop_burst=4),
            np.random.default_rng(0), report)
        assert len(out) == len(events) - report.dropped
        assert report.dropped > 0
        # Survivors are a subsequence of the input (order preserved).
        it = iter(events)
        assert all(any(e is o for e in it) for o in out)

    def test_duplication_back_to_back(self):
        events = stream(500)
        report = CorruptionReport()
        out = corrupt_events(
            events, CorruptionSpec(duplicate_p=0.05),
            np.random.default_rng(0), report)
        assert len(out) == len(events) + report.duplicated
        assert report.duplicated > 0
        pairs = sum(1 for a, b in zip(out, out[1:]) if a is b)
        assert pairs == report.duplicated

    def test_reorder_bounded_and_timestamps_untouched(self):
        events = stream(500)
        max_s = 3.0
        report = CorruptionReport()
        out = corrupt_events(
            events, CorruptionSpec(reorder_p=0.2, reorder_max_s=max_s),
            np.random.default_rng(0), report)
        assert report.displaced > 0
        assert sorted(e.time for e in out) == [e.time for e in events]
        # Displacement is time-bounded: no event precedes another whose
        # timestamp is more than the bound ahead of it.
        high = float("-inf")
        for e in out:
            assert e.time > high - 2 * max_s
            high = max(high, e.time)

    def test_skew_offsets_constant_per_node(self):
        events = stream(200, nodes=3)
        report = CorruptionReport()
        out = corrupt_events(
            events, CorruptionSpec(skew_max_s=2.0),
            np.random.default_rng(0), report)
        assert report.skewed_nodes == 3
        offsets = {}
        for before, after in zip(events, out):
            assert after.node == before.node
            offsets.setdefault(before.node, set()).add(
                round(after.time - before.time, 9))
        for node_offsets in offsets.values():
            assert len(node_offsets) == 1
            (offset,) = node_offsets
            assert abs(offset) <= 2.0


class TestLineKinds:
    def test_truncation_shortens(self):
        lines = [e.to_line() for e in stream(500)]
        report = CorruptionReport()
        out = corrupt_lines(
            lines, CorruptionSpec(truncate_p=0.2),
            np.random.default_rng(0), report)
        assert report.truncated > 0
        assert len(out) == len(lines)
        shorter = sum(1 for a, b in zip(out, lines) if len(a) < len(b))
        assert shorter == report.truncated

    def test_garbling_injects_junk(self):
        from repro.logsim.corruptions import GARBLE_CHARS

        lines = [e.to_line() for e in stream(500)]
        report = CorruptionReport()
        out = corrupt_lines(
            lines, CorruptionSpec(garble_p=0.2),
            np.random.default_rng(0), report)
        assert report.garbled > 0
        junked = sum(
            1 for line in out if any(c in GARBLE_CHARS for c in line))
        assert junked > 0


class TestReport:
    def test_as_dict_covers_all_fields(self):
        report = CorruptionReport(dropped=2, truncated=3)
        d = report.as_dict()
        assert d["dropped"] == 2 and d["truncated"] == 3
        assert set(d) >= {"events_in", "events_out", "duplicated",
                          "displaced", "skewed_nodes", "garbled"}
        assert report.total_faults == 5
