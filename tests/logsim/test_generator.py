"""Tests for workload generation and the end-to-end predict pipeline."""

import numpy as np
import pytest

from repro.core import PredictorFleet, pair_predictions
from repro.logsim import (
    ALL_SYSTEMS,
    HPC3,
    ClusterLogGenerator,
    catalog_for,
    chain_defs_for,
)
from repro.logsim.faults import DeltaTModel, LeadGapModel


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=42)


class TestCatalogs:
    @pytest.mark.parametrize("family", ["xc30", "xc40", "xe6"])
    def test_catalog_complete(self, family):
        catalog = catalog_for(family)
        assert len(catalog.benign) >= 10
        assert len(catalog.anomalies) >= 15
        keys = [e.key for e in (*catalog.benign, *catalog.anomalies)]
        assert len(keys) == len(set(keys))

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            catalog_for("bgq")

    @pytest.mark.parametrize("family", ["xc40", "xe6"])
    def test_chain_defs_reference_catalog(self, family):
        catalog = catalog_for(family)
        trained, novel = chain_defs_for(family)
        assert len(trained) >= 5
        for chain_def in trained + novel:
            for key in chain_def.phrase_keys:
                catalog.anomaly(key)
            catalog.anomaly(chain_def.terminal_key)

    def test_realizers_substitute(self):
        catalog = catalog_for("xc40")
        rng = np.random.default_rng(0)
        msg = catalog.anomaly("dvs_verify").make(rng, "c0-0c1s2n3")
        assert "<node>" not in msg and "<hex>" not in msg and "<n>" not in msg
        assert msg.startswith("DVS: verify filesystem:")

    def test_trained_chains_distinct_start(self):
        for family in ("xc40", "xe6"):
            trained, _ = chain_defs_for(family)
            starts = [c.phrase_keys[0] for c in trained]
            assert len(starts) == len(set(starts))


class TestDeltaTModel:
    def test_shape_mostly_under_two_minutes(self):
        model = DeltaTModel()
        rng = np.random.default_rng(1)
        gaps = model.sample(rng, 5000)
        assert (gaps > 0).all()
        assert np.mean(gaps <= 125.0) > 0.9  # bulk under ~2 min (Fig. 5)
        assert np.mean(gaps <= 0.2) > 0.3  # substantial msec-scale mass

    def test_lead_gap_range(self):
        model = LeadGapModel()
        rng = np.random.default_rng(2)
        leads = np.array([model.sample(rng) for _ in range(500)])
        assert leads.min() >= 30.0
        assert leads.max() <= 235.0
        assert 120.0 <= leads.mean() <= 200.0  # ≈2–3.3 min (Figs. 13–14)


class TestGenerator:
    def test_window_reproducible(self):
        a = ClusterLogGenerator(HPC3, seed=7).generate_window(
            duration=600, n_nodes=10, n_failures=3)
        b = ClusterLogGenerator(HPC3, seed=7).generate_window(
            duration=600, n_nodes=10, n_failures=3)
        assert [e.to_line() for e in a.events] == [e.to_line() for e in b.events]

    def test_events_sorted(self, gen):
        window = gen.generate_window(duration=1200, n_nodes=12, n_failures=4)
        times = [e.time for e in window.events]
        assert times == sorted(times)

    def test_failures_have_terminal_records(self, gen):
        window = gen.generate_window(duration=1800, n_nodes=16, n_failures=5)
        assert len(window.failures) == 5
        for failure in window.failures:
            node_events = [e for e in window.events if e.node == failure.node]
            assert any(abs(e.time - failure.time) < 1e-9 for e in node_events)

    def test_spurious_chains_have_no_failure(self, gen):
        window = gen.generate_window(
            duration=1800, n_nodes=20, n_failures=4, n_spurious=3)
        spurious = [i for i in window.injections if i.kind == "spurious"]
        assert len(spurious) == 3
        failed_nodes = {f.node for f in window.failures}
        for injection in spurious:
            assert injection.node not in failed_nodes
            assert injection.failure_time is None

    def test_novel_fraction_applied(self):
        gen = ClusterLogGenerator(HPC3, seed=11)  # novel_fraction 0.177
        window = gen.generate_window(duration=3600, n_nodes=40, n_failures=17)
        novel = [i for i in window.injections if i.kind == "novel"]
        assert len(novel) == round(0.177 * 17)

    def test_chain_phrases_in_window(self, gen):
        window = gen.generate_window(duration=900, n_nodes=8, n_failures=2)
        for injection in window.injections:
            assert all(window.events[0].time <= t for t in injection.phrase_times)
            assert injection.phrase_times[-1] <= window.events[-1].time


class TestEndToEndPipeline:
    """Generated logs → fleet → predictions → lead-time pairing."""

    def test_detectable_failures_predicted(self):
        gen = ClusterLogGenerator(HPC3, seed=21)
        window = gen.generate_window(
            duration=3600, n_nodes=24, n_failures=6, n_spurious=0)
        fleet = PredictorFleet.from_store(gen.chains, gen.store, timeout=gen.recommended_timeout)
        report = fleet.run(window.events)
        pairing = pair_predictions(report.predictions, window.failures)
        detectable = [i for i in window.injections if i.kind == "detectable"]
        assert pairing.true_positives == len(detectable)
        # Novel-chain failures are the misses.
        assert len(pairing.missed_failures) == len(window.failures) - len(detectable)

    def test_lead_times_are_minutes(self):
        gen = ClusterLogGenerator(HPC3, seed=22)
        window = gen.generate_window(
            duration=7200, n_nodes=24, n_failures=8, n_spurious=0)
        fleet = PredictorFleet.from_store(gen.chains, gen.store, timeout=gen.recommended_timeout)
        report = fleet.run(window.events)
        pairing = pair_predictions(report.predictions, window.failures)
        assert pairing.matched, "expected at least one paired prediction"
        for record in pairing.matched:
            assert 25.0 <= record.effective_lead_time <= 240.0

    def test_spurious_chains_become_false_positives(self):
        gen = ClusterLogGenerator(HPC3, seed=23)
        window = gen.generate_window(
            duration=3600, n_nodes=24, n_failures=4, n_spurious=2)
        fleet = PredictorFleet.from_store(gen.chains, gen.store, timeout=gen.recommended_timeout)
        report = fleet.run(window.events)
        pairing = pair_predictions(report.predictions, window.failures)
        assert len(pairing.false_positives) == 2

    def test_fc_related_fraction_below_half(self):
        # Observation 4: under 47% of phrases are FC-related.
        gen = ClusterLogGenerator(HPC3, seed=24)
        window = gen.generate_window(
            duration=3600, n_nodes=24, n_failures=5, benign_rate_hz=0.02)
        fleet = PredictorFleet.from_store(gen.chains, gen.store, timeout=gen.recommended_timeout)
        report = fleet.run(window.events)
        assert 0.0 < report.fc_related_fraction < 0.47


@pytest.mark.parametrize("config", ALL_SYSTEMS, ids=lambda c: c.name)
def test_all_systems_generate(config):
    gen = ClusterLogGenerator(config, seed=1)
    window = gen.generate_window(duration=600, n_nodes=8, n_failures=2)
    assert window.n_events > 0
    assert len(gen.chains) >= 5
