"""Tests for stream plumbing (merge / serialize / tolerant replay)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import LogDecodeError, LogEvent
from repro.logsim import (
    IngestStats,
    SortBuffer,
    StreamOrderError,
    clip_window,
    decode_lines,
    merge_streams,
    read_log,
    sorted_stream,
    split_by_node,
    write_log,
)


def ev(t, node="c0-0c0s0n0", msg="hello world"):
    return LogEvent(time=t, node=node, message=msg)


class TestMerge:
    def test_merges_in_time_order(self):
        a = [ev(1.0), ev(4.0)]
        b = [ev(2.0), ev(3.0)]
        merged = list(merge_streams(a, b))
        assert [e.time for e in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_lazy(self):
        def infinite():
            t = 0.0
            while True:
                t += 1.0
                yield ev(t)

        merged = merge_streams(infinite(), [ev(0.5)])
        assert next(merged).time == 0.5
        assert next(merged).time == 1.0

    @given(st.lists(st.lists(st.floats(0, 1e6), max_size=10).map(sorted), max_size=4))
    def test_merge_property(self, streams):
        events = [[ev(t) for t in s] for s in streams]
        merged = [e.time for e in merge_streams(*events)]
        assert merged == sorted(t for s in streams for t in s)


class TestSerialization:
    def test_roundtrip(self):
        events = [ev(1.5, "c0-0c1s2n3", "DVS: file node down: x"), ev(2.25)]
        buffer = io.StringIO()
        assert write_log(events, buffer) == 2
        buffer.seek(0)
        back = list(read_log(buffer))
        assert back == events

    def test_file_roundtrip(self, tmp_path):
        events = [ev(float(i), msg=f"msg {i}") for i in range(5)]
        path = tmp_path / "window.log"
        write_log(events, path)
        assert list(read_log(path)) == events

    def test_message_with_spaces_preserved(self):
        event = ev(0.0, msg="a  b   c, punctuated: [ok] (fine)")
        assert LogEvent.from_line(event.to_line()) == event

    def test_blank_lines_skipped(self):
        buffer = io.StringIO(ev(1.0).to_line() + "\n\n" + ev(2.0).to_line() + "\n")
        assert len(list(read_log(buffer))) == 2


def mixed_lines():
    """Three good lines with two malformed ones interleaved."""
    return [
        ev(1.0).to_line(),
        "1970-01-01T00:00:04 node-but-no-message",
        ev(2.0).to_line(),
        "not-a-timestamp c0-0c0s0n0 some message",
        ev(3.0).to_line(),
    ]


class TestErrorPolicies:
    def test_strict_raises_on_first_bad_line(self):
        with pytest.raises(LogDecodeError):
            list(decode_lines(mixed_lines(), on_error="strict"))

    @pytest.mark.parametrize("policy", ["warn", "quarantine"])
    def test_tolerant_policies_keep_stream_alive(self, policy):
        stats = IngestStats()
        events = list(decode_lines(mixed_lines(), on_error=policy, stats=stats))
        assert [e.time for e in events] == [1.0, 2.0, 3.0]
        assert stats.lines_read == 5
        assert stats.decoded == 3
        assert stats.quarantined == 2
        assert stats.funnel_ok
        assert stats.quarantined_by_reason == {
            "truncated": 1, "bad_timestamp": 1}

    def test_default_policy_is_tolerant(self):
        # Satellite 1: a single bad line must not kill read_log.
        buffer = io.StringIO("\n".join(mixed_lines()) + "\n")
        assert len(list(read_log(buffer))) == 3

    def test_strict_funnel_holds_on_error_exit(self):
        stats = IngestStats()
        with pytest.raises(LogDecodeError):
            list(decode_lines(mixed_lines(), on_error="strict", stats=stats))
        assert stats.funnel_ok
        assert stats.quarantined == 1  # counted before the raise

    def test_funnel_holds_on_midstream_abandon(self):
        stats = IngestStats()
        it = decode_lines(mixed_lines(), stats=stats)
        next(it)
        it.close()  # consumer walks away; finally-fold still runs
        assert stats.funnel_ok
        assert stats.lines_read == stats.decoded == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            list(decode_lines([], on_error="ignore"))
        with pytest.raises(ValueError):
            list(read_log(io.StringIO(""), on_error="explode"))

    def test_quarantine_fraction(self):
        stats = IngestStats()
        list(decode_lines(mixed_lines(), stats=stats))
        assert stats.quarantine_fraction == pytest.approx(2 / 5)
        assert IngestStats().quarantine_fraction == 0.0

    def test_invalid_utf8_file_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "binary.log"
        with open(path, "wb") as fh:
            fh.write((ev(1.0).to_line() + "\n").encode())
            fh.write(b"\xff\xfe\x00 broken bytes\n")
            fh.write((ev(2.0).to_line() + "\n").encode())
        stats = IngestStats()
        events = list(read_log(path, stats=stats))
        assert [e.time for e in events] == [1.0, 2.0]
        assert stats.quarantined == 1

    def test_stats_add_accumulates(self):
        a, b = IngestStats(), IngestStats()
        list(decode_lines(mixed_lines(), stats=a))
        list(decode_lines(mixed_lines(), stats=b))
        a.add(b)
        assert a.lines_read == 10
        assert a.quarantined == 4
        assert a.quarantined_by_reason == {"truncated": 2, "bad_timestamp": 2}
        assert a.funnel_ok


class TestMergeGuard:
    def test_pass_without_stats_is_raw_merge(self):
        # The zero-overhead path: unsorted input flows through unchecked.
        out = list(merge_streams([ev(5.0), ev(1.0)]))
        assert [e.time for e in out] == [5.0, 1.0]

    def test_pass_with_stats_counts(self):
        stats = IngestStats()
        out = list(merge_streams([ev(5.0), ev(1.0), ev(6.0)], stats=stats))
        assert len(out) == 3
        assert stats.out_of_order == 1

    def test_warn_counts_all_disorder(self):
        stats = IngestStats()
        out = list(merge_streams(
            [ev(5.0), ev(1.0), ev(2.0), ev(6.0)],
            on_disorder="warn", stats=stats))
        assert len(out) == 4
        assert stats.out_of_order == 2

    def test_raise_policy(self):
        with pytest.raises(StreamOrderError):
            list(merge_streams([ev(5.0), ev(1.0)], on_disorder="raise"))

    def test_sorted_inputs_never_trip_the_guard(self):
        stats = IngestStats()
        out = list(merge_streams(
            [ev(1.0), ev(3.0)], [ev(2.0), ev(4.0)],
            on_disorder="raise", stats=stats))
        assert [e.time for e in out] == [1.0, 2.0, 3.0, 4.0]
        assert stats.out_of_order == 0

    def test_unknown_disorder_policy(self):
        with pytest.raises(ValueError):
            merge_streams([], on_disorder="shrug")


class TestSortBuffer:
    def test_repairs_within_horizon(self):
        stats = IngestStats()
        times = [1.0, 3.0, 2.0, 5.0, 4.0, 8.0, 9.0]
        out = list(sorted_stream((ev(t) for t in times), 3.0, stats))
        assert [e.time for e in out] == sorted(times)
        assert stats.reordered == 2
        assert stats.late == 0

    def test_late_event_emitted_not_dropped(self):
        stats = IngestStats()
        buffer = SortBuffer(1.0, stats)
        released = []
        for t in [1.0, 5.0, 9.0]:
            released += buffer.push(ev(t))
        # 2.0 is behind the emit watermark (5.0 - 1.0 released 1.0..4.0
        # range already): too late to reinsert, emitted immediately.
        released += buffer.push(ev(2.0))
        released += buffer.flush()
        assert sorted(e.time for e in released) == [1.0, 2.0, 5.0, 9.0]
        assert len(released) == 4
        assert stats.late == 1

    def test_equal_timestamps_keep_arrival_order(self):
        buffer = SortBuffer(1.0)
        a, b = ev(2.0, msg="first"), ev(2.0, msg="second")
        buffer.push(a)
        buffer.push(b)
        out = buffer.flush()
        assert [e.message for e in out] == ["first", "second"]

    def test_tie_at_emit_watermark_counts_late(self):
        # Regression: an event whose timestamp *equals* the emit
        # watermark must not re-enter the heap — its tie slot was
        # already released, so buffering it again would emit it behind
        # an already-emitted equal-timestamp event.  It is late.
        stats = IngestStats()
        buffer = SortBuffer(1.0, stats)
        released = []
        released += buffer.push(ev(2.0, msg="on-time"))
        # High water 3.0 ⇒ watermark 2.0 ⇒ the 2.0 slot is emitted.
        released += buffer.push(ev(3.0))
        assert [e.time for e in released] == [2.0]
        assert buffer._emitted_to == 2.0
        # Equal-timestamp arrival displaced by exactly the horizon:
        # emitted immediately (order still non-decreasing), counted
        # late, never behind a later-timestamp heap release.
        released += buffer.push(ev(2.0, msg="displaced"))
        assert stats.late == 1
        assert [e.time for e in released] == [2.0, 2.0]
        released += buffer.flush()
        assert [e.time for e in released] == [2.0, 2.0, 3.0]
        times = [e.time for e in released]
        assert times == sorted(times)

    def test_tie_displacement_in_sorted_stream(self):
        # The same boundary through the lazy wrapper: the duplicate
        # timestamp arriving after its slot emitted comes out adjacent
        # to its tie, not displaced behind later events.
        stats = IngestStats()
        out = list(sorted_stream(
            (ev(t) for t in [2.0, 3.0, 2.0, 4.0]), 1.0, stats))
        assert [e.time for e in out] == [2.0, 2.0, 3.0, 4.0]
        assert stats.late == 1

    def test_len_and_flush(self):
        buffer = SortBuffer(10.0)
        for t in [1.0, 2.0, 3.0]:
            assert buffer.push(ev(t)) == []
        assert len(buffer) == 3
        assert [e.time for e in buffer.flush()] == [1.0, 2.0, 3.0]
        assert len(buffer) == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            SortBuffer(-1.0)

    @given(st.lists(st.floats(0, 100), max_size=50))
    def test_bounded_displacement_always_sorted(self, times):
        # Any stream whose events are displaced by at most the horizon
        # comes out fully sorted.
        out = list(sorted_stream(
            (ev(t) for t in times), 200.0))  # horizon > whole window
        assert [e.time for e in out] == sorted(times)


class TestGrouping:
    def test_split_by_node(self):
        events = [ev(1.0, "a"), ev(2.0, "b"), ev(3.0, "a")]
        groups = split_by_node(events)
        assert sorted(groups) == ["a", "b"]
        assert [e.time for e in groups["a"]] == [1.0, 3.0]

    def test_split_empty_stream(self):
        assert split_by_node([]) == {}

    def test_split_preserves_within_node_order(self):
        events = [ev(2.0, "a", "x"), ev(2.0, "a", "y"), ev(2.0, "b", "z")]
        groups = split_by_node(events)
        assert [e.message for e in groups["a"]] == ["x", "y"]

    def test_clip_window(self):
        events = [ev(float(i)) for i in range(10)]
        clipped = clip_window(events, 3.0, 7.0)
        assert [e.time for e in clipped] == [3.0, 4.0, 5.0, 6.0]

    def test_clip_empty_stream(self):
        assert clip_window([], 0.0, 10.0) == []

    def test_clip_equal_timestamps_all_kept(self):
        events = [ev(5.0, msg=f"m{i}") for i in range(4)]
        assert clip_window(events, 5.0, 6.0) == events
        assert clip_window(events, 4.0, 5.0) == []  # end is exclusive

    def test_clip_start_equals_end_is_empty(self):
        events = [ev(float(i)) for i in range(5)]
        assert clip_window(events, 3.0, 3.0) == []

    def test_clip_outside_range(self):
        events = [ev(float(i)) for i in range(5)]
        assert clip_window(events, 10.0, 20.0) == []
        assert clip_window(events, -5.0, 0.0) == []
