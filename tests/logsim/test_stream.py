"""Tests for stream plumbing (merge / serialize / replay)."""

import io

from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import LogEvent
from repro.logsim import clip_window, merge_streams, read_log, split_by_node, write_log


def ev(t, node="c0-0c0s0n0", msg="hello world"):
    return LogEvent(time=t, node=node, message=msg)


class TestMerge:
    def test_merges_in_time_order(self):
        a = [ev(1.0), ev(4.0)]
        b = [ev(2.0), ev(3.0)]
        merged = list(merge_streams(a, b))
        assert [e.time for e in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_lazy(self):
        def infinite():
            t = 0.0
            while True:
                t += 1.0
                yield ev(t)

        merged = merge_streams(infinite(), [ev(0.5)])
        assert next(merged).time == 0.5
        assert next(merged).time == 1.0

    @given(st.lists(st.lists(st.floats(0, 1e6), max_size=10).map(sorted), max_size=4))
    def test_merge_property(self, streams):
        events = [[ev(t) for t in s] for s in streams]
        merged = [e.time for e in merge_streams(*events)]
        assert merged == sorted(t for s in streams for t in s)


class TestSerialization:
    def test_roundtrip(self):
        events = [ev(1.5, "c0-0c1s2n3", "DVS: file node down: x"), ev(2.25)]
        buffer = io.StringIO()
        assert write_log(events, buffer) == 2
        buffer.seek(0)
        back = list(read_log(buffer))
        assert back == events

    def test_file_roundtrip(self, tmp_path):
        events = [ev(float(i), msg=f"msg {i}") for i in range(5)]
        path = tmp_path / "window.log"
        write_log(events, path)
        assert list(read_log(path)) == events

    def test_message_with_spaces_preserved(self):
        event = ev(0.0, msg="a  b   c, punctuated: [ok] (fine)")
        assert LogEvent.from_line(event.to_line()) == event

    def test_blank_lines_skipped(self):
        buffer = io.StringIO(ev(1.0).to_line() + "\n\n" + ev(2.0).to_line() + "\n")
        assert len(list(read_log(buffer))) == 2


class TestGrouping:
    def test_split_by_node(self):
        events = [ev(1.0, "a"), ev(2.0, "b"), ev(3.0, "a")]
        groups = split_by_node(events)
        assert sorted(groups) == ["a", "b"]
        assert [e.time for e in groups["a"]] == [1.0, 3.0]

    def test_clip_window(self):
        events = [ev(float(i)) for i in range(10)]
        clipped = clip_window(events, 3.0, 7.0)
        assert [e.time for e in clipped] == [3.0, 4.0, 5.0, 6.0]
