"""Tests for the predictor-placement model (Fig. 16 discussion)."""

import pytest

from repro.logsim.placement import (
    ClusterProfile,
    compare_placements,
    evaluate_placement,
)


@pytest.fixture
def cray():
    # HPC1-scale: 5576 nodes, modest healthy log rate.
    return ClusterProfile(n_nodes=5576, log_rate_hz=0.03)


class TestClusterProfile:
    def test_aggregate_rate(self, cray):
        assert cray.aggregate_rate_hz == pytest.approx(5576 * 0.03)

    def test_bandwidth(self, cray):
        expected = 5576 * 0.03 * 160 * 8
        assert cray.aggregate_bandwidth_bps == pytest.approx(expected)
        assert cray.peak_bandwidth_bps == pytest.approx(expected * 20)


class TestPlacement:
    def test_hss_feasible_for_cray_scale(self, cray):
        result = evaluate_placement(cray, strategy="hss")
        assert result.feasible
        assert result.per_node_cpu_fraction == 0.0
        assert result.cpu_cores_needed < 1.0  # µs-scale per-message cost
        assert result.network_utilization < 0.01

    def test_on_node_feasible_but_touches_nodes(self, cray):
        result = evaluate_placement(cray, strategy="on_node")
        assert result.feasible
        assert 0 < result.per_node_cpu_fraction < 0.01

    def test_datacenter_tier_throttles_at_scale(self):
        # The paper's data-center caveat: 100k chatty hosts on a shared
        # tier link throttle the network slice.
        dc = ClusterProfile(n_nodes=100_000, log_rate_hz=5.0,
                            mean_message_bytes=400)
        result = evaluate_placement(dc, strategy="datacenter_tier",
                                    aggregation_link_bps=10e9)
        assert not result.feasible
        assert result.binding_constraint == "network"

    def test_hss_cpu_binds_with_slow_predictor(self, cray):
        # An ML-style 1 ms/message predictor cannot sit centrally.
        result = evaluate_placement(
            cray, strategy="hss", per_message_cost_s=1e-2, core_budget=32)
        assert not result.feasible
        assert result.binding_constraint == "cpu"

    def test_on_node_infeasible_when_chatty_and_slow(self):
        chatty = ClusterProfile(n_nodes=100, log_rate_hz=50.0)
        result = evaluate_placement(
            chatty, strategy="on_node", per_message_cost_s=1e-3)
        assert not result.feasible
        assert result.binding_constraint == "job interference"

    def test_unknown_strategy(self, cray):
        with pytest.raises(ValueError):
            evaluate_placement(cray, strategy="cloud")

    def test_compare_covers_all(self, cray):
        results = compare_placements(cray)
        assert set(results) == {"hss", "on_node", "datacenter_tier"}
        # The paper's conclusion at Cray scale: HSS placement wins.
        assert results["hss"].feasible
