"""Tests for the paced live-log emitter (``repro.logsim.emitter``)."""

import pytest

from repro.logsim.emitter import (
    EmitStats,
    file_sink,
    parse_time_prefix,
    stream_log,
)


class FakeTime:
    """Deterministic clock + sleep pair: sleeping advances the clock."""

    def __init__(self):
        self.now = 1000.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        assert seconds > 0
        self.sleeps.append(seconds)
        self.now += seconds


def collect():
    chunks = []
    return chunks, chunks.append


LOG = (
    b"10.0 c0-0c0s0n0 alpha one\n"
    b"12.0 c0-0c0s0n1 bravo two\n"
    b"\x00\xffgarbled header line\n"
    b"15.5 c0-0c0s0n0 charlie three\n"
)


class TestParseTimePrefix:
    def test_parses_leading_float(self):
        assert parse_time_prefix(b"12.5 node msg") == 12.5

    def test_rejects_garbage(self):
        assert parse_time_prefix(b"\x00\xff nope") is None
        assert parse_time_prefix(b"nospacefield") is None
        assert parse_time_prefix(b"abc node msg") is None


class TestUnpacedBlast:
    def test_ships_every_record_verbatim(self):
        chunks, sink = collect()
        fake = FakeTime()
        stats = stream_log(
            LOG, sink, pace=0.0, sleep=fake.sleep, clock=fake.clock)
        assert b"".join(chunks) == LOG  # binary-safe, corruption included
        assert stats.lines == 4
        assert stats.bytes_sent == len(LOG)
        assert fake.sleeps == []

    def test_chunk_bounds_each_flush(self):
        chunks, sink = collect()
        stats = stream_log(LOG, sink, chunk=1)
        assert len(chunks) == 4
        assert stats.flushes == 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            stream_log(LOG, lambda b: None, pace=-1.0)
        with pytest.raises(ValueError):
            stream_log(LOG, lambda b: None, chunk=0)


class TestPacing:
    def test_waits_follow_event_time(self):
        chunks, sink = collect()
        fake = FakeTime()
        # pace=2 → half of event time: gaps of 2.0 and 3.5 event-seconds
        # become 1.0 and 1.75 wall-seconds.
        stats = stream_log(
            LOG, sink, pace=2.0, sleep=fake.sleep, clock=fake.clock)
        assert fake.sleeps == pytest.approx([1.0, 1.75])
        assert stats.sleeps == 2
        assert stats.slept_seconds == pytest.approx(2.75)
        assert b"".join(chunks) == LOG

    def test_corrupted_record_inherits_schedule(self):
        chunks, sink = collect()
        fake = FakeTime()
        stats = stream_log(
            LOG, sink, pace=1.0, sleep=fake.sleep, clock=fake.clock)
        # The garbled record neither sleeps on its own nor reorders:
        # one wait for 12.0, none for the garbled line, one for 15.5.
        assert fake.sleeps == pytest.approx([2.0, 3.5])
        assert stats.unparsed_times == 1
        assert b"".join(chunks) == LOG

    def test_pacing_flushes_before_sleeping(self):
        sent_before_sleep = []
        chunks = []

        class Fake(FakeTime):
            def sleep(self, seconds):
                sent_before_sleep.append(b"".join(chunks))
                super().sleep(seconds)

        fake = Fake()
        stream_log(
            LOG, chunks.append, pace=1.0, chunk=1000,
            sleep=fake.sleep, clock=fake.clock)
        # Everything due before each wait was already on the wire.
        assert sent_before_sleep[0].count(b"\n") == 1
        assert sent_before_sleep[1].count(b"\n") == 3

    def test_backwards_timestamp_never_stalls(self):
        log = b"10.0 n a\n5.0 n b\n11.0 n c\n"
        fake = FakeTime()
        chunks, sink = collect()
        stream_log(log, sink, pace=1.0, sleep=fake.sleep, clock=fake.clock)
        # 5.0 is behind the schedule: emitted immediately, order kept.
        assert fake.sleeps == pytest.approx([1.0])
        assert b"".join(chunks) == log

    def test_micro_waits_are_skipped_not_accumulated_away(self):
        log = b"".join(b"%.3f n m\n" % (10.0 + i * 0.001) for i in range(100))
        fake = FakeTime()
        chunks, sink = collect()
        stats = stream_log(
            log, sink, pace=1.0, sleep=fake.sleep, clock=fake.clock,
            min_sleep=0.05)
        # 99 ms of schedule in >= 50 ms steps: 1 coalesced sleep, and
        # the absolute schedule means no drift was lost.
        assert stats.sleeps == 1
        assert sum(fake.sleeps) == pytest.approx(0.05, abs=0.05)


class TestSinks:
    def test_file_sink_writes_and_flushes(self, tmp_path):
        target = tmp_path / "out.log"
        with open(target, "wb") as fh:
            stream_log(LOG, file_sink(fh))
        assert target.read_bytes() == LOG

    def test_stats_as_dict_round_trips(self):
        stats = EmitStats(lines=4, bytes_sent=10)
        payload = stats.as_dict()
        assert payload["lines"] == 4
        assert payload["bytes_sent"] == 10
