"""Tests for fault models (ChainDef validation, sampling properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logsim.faults import ChainDef, DeltaTModel, LeadGapModel


class TestChainDef:
    def test_valid(self):
        cd = ChainDef("X", ("a", "b", "c"), "death")
        assert cd.phrase_keys == ("a", "b", "c")

    def test_too_short(self):
        with pytest.raises(ValueError, match="≥2"):
            ChainDef("X", ("a",), "death")

    def test_repeated_key(self):
        with pytest.raises(ValueError, match="repeated"):
            ChainDef("X", ("a", "b", "a"), "death")


class TestDeltaTModel:
    def test_sample_size(self):
        model = DeltaTModel()
        rng = np.random.default_rng(0)
        assert model.sample(rng, 17).shape == (17,)

    def test_weights_normalized_internally(self):
        # Non-normalized weights still produce a valid distribution.
        model = DeltaTModel(burst_weight=2.0, seconds_weight=1.0,
                            minutes_weight=1.0)
        rng = np.random.default_rng(1)
        gaps = model.sample(rng, 500)
        assert (gaps > 0).all()

    def test_pure_burst_model(self):
        model = DeltaTModel(burst_weight=1.0, seconds_weight=0.0,
                            minutes_weight=0.0)
        rng = np.random.default_rng(2)
        gaps = model.sample(rng, 500)
        assert np.median(gaps) < 0.2  # everything msec-scale

    def test_minutes_tail_thin(self):
        # Only the lognormal seconds tail can exceed minutes_high, and
        # only rarely: the distribution has a thin extreme tail.
        model = DeltaTModel()
        rng = np.random.default_rng(3)
        gaps = model.sample(rng, 2000)
        assert (gaps > model.minutes_high).mean() < 0.05

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 200))
    def test_always_positive(self, seed, n):
        gaps = DeltaTModel().sample(np.random.default_rng(seed), n)
        assert (gaps > 0).all()

    def test_deterministic_given_rng(self):
        a = DeltaTModel().sample(np.random.default_rng(9), 20)
        b = DeltaTModel().sample(np.random.default_rng(9), 20)
        assert np.array_equal(a, b)


class TestLeadGapModel:
    def test_clipping(self):
        model = LeadGapModel(mean=100.0, std=500.0, minimum=30.0, maximum=200.0)
        rng = np.random.default_rng(4)
        draws = np.array([model.sample(rng) for _ in range(300)])
        assert draws.min() >= 30.0
        assert draws.max() <= 200.0

    def test_mean_roughly_respected(self):
        model = LeadGapModel()
        rng = np.random.default_rng(5)
        draws = np.array([model.sample(rng) for _ in range(2000)])
        assert abs(draws.mean() - model.mean) < 20.0
