"""Tests for Cray topology / node naming."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logsim.topology import (
    NODES_PER_CABINET,
    ClusterTopology,
    NodeName,
)


class TestNodeName:
    def test_roundtrip(self):
        name = NodeName(4, 2, 0, 15, 3)
        assert str(name) == "c4-2c0s15n3"
        assert NodeName.parse("c4-2c0s15n3") == name

    def test_parse_paper_example(self):
        n = NodeName.parse("c0-0c2s0n2")
        assert (n.cabinet_col, n.cabinet_row, n.chassis, n.slot, n.node) == (0, 0, 2, 0, 2)

    def test_blade(self):
        assert NodeName.parse("c4-2c0s15n3").blade == "c4-2c0s15"

    @pytest.mark.parametrize("bad", ["x0-0c0s0n0", "c0-0c3s0n0", "c0-0c0s16n0", "c0-0c0s0n4", "c0c0s0n0"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            NodeName.parse(bad)


class TestClusterTopology:
    def test_node_names_unique(self):
        topo = ClusterTopology(500)
        names = list(topo.nodes())
        assert len(names) == 500
        assert len(set(names)) == 500

    def test_all_names_parse(self):
        topo = ClusterTopology(NODES_PER_CABINET * 2 + 7)
        for name in topo.nodes():
            NodeName.parse(name)

    def test_first_node(self):
        assert ClusterTopology(10).node_name(0) == "c0-0c0s0n0"

    def test_cabinet_rollover(self):
        topo = ClusterTopology(NODES_PER_CABINET + 1)
        assert topo.node_name(NODES_PER_CABINET) == "c1-0c0s0n0"

    def test_row_rollover(self):
        topo = ClusterTopology(NODES_PER_CABINET * 17, cabinets_per_row=16)
        assert topo.node_name(NODES_PER_CABINET * 16).startswith("c0-1")

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            ClusterTopology(10).node_name(10)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)

    def test_sample_nodes(self):
        topo = ClusterTopology(1000)
        rng = np.random.default_rng(7)
        sample = topo.sample_nodes(rng, 50)
        assert len(sample) == len(set(sample)) == 50

    def test_sample_caps_at_cluster_size(self):
        topo = ClusterTopology(5)
        rng = np.random.default_rng(7)
        assert len(topo.sample_nodes(rng, 50)) == 5

    def test_n_cabinets(self):
        assert ClusterTopology(NODES_PER_CABINET).n_cabinets == 1
        assert ClusterTopology(NODES_PER_CABINET + 1).n_cabinets == 2

    @given(st.integers(0, 5575))
    def test_table2_scale_names_valid(self, index):
        topo = ClusterTopology(5576)  # HPC1 scale
        NodeName.parse(topo.node_name(index))
