"""CLI-level serving tests: ``aarohi serve``, ``aarohi stream``, and
the SIGTERM graceful-drain contract of the long-running commands.

The serve/stream tests run real subprocesses (signals and sockets
included) against the numpy-free handmade bundle, so they also cover
the no-numpy CI leg.  The predict/obs-serve drain tests need the log
simulator and skip without numpy.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.core import ChainSet, FailureChain, LogEvent
from repro.core.events import Severity
from repro.persistence import PredictorBundle
from repro.templates import TemplateStore

pytestmark = pytest.mark.daemon

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

WORDS = {
    176: "alpha x", 177: "bravo x", 178: "charlie x", 179: "delta x",
    180: "echo x", 137: "foxtrot x", 172: "golf x", 193: "hotel x",
}


def write_bundle(path) -> PredictorBundle:
    chains = ChainSet([
        FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
        FailureChain("FC5", (172, 177, 178, 193, 137)),
    ])
    store = TemplateStore()
    for pattern, severity, token in [
        ("alpha *", Severity.ERRONEOUS, 176),
        ("bravo *", Severity.UNKNOWN, 177),
        ("charlie *", Severity.UNKNOWN, 178),
        ("delta *", Severity.UNKNOWN, 179),
        ("echo *", Severity.ERRONEOUS, 180),
        ("foxtrot *", Severity.ERRONEOUS, 137),
        ("golf *", Severity.ERRONEOUS, 172),
        ("hotel *", Severity.UNKNOWN, 193),
    ]:
        store.add(pattern, severity, token=token)
    bundle = PredictorBundle(store=store, chains=chains, timeout=120.0)
    bundle.save(path)
    return bundle


def write_drill_log(path, n_nodes=6):
    lines = []
    t = 1000.0
    for node in [f"node{i:02d}" for i in range(n_nodes)]:
        for token in (172, 177, 178, 193, 137):
            lines.append(
                LogEvent(time=t, node=node, message=WORDS[token]).to_line())
            t += 0.5
    lines.insert(5, "broken line here")
    path.write_text("\n".join(lines) + "\n")
    return lines


def cli_env():
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=cli_env(), timeout=120, **kwargs)


def read_until(stream, pattern, timeout=60.0):
    """Read lines until one matches ``pattern``; returns (match, all)."""
    deadline = time.monotonic() + timeout
    seen = []
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            break
        seen.append(line)
        match = re.search(pattern, line)
        if match:
            return match, seen
    raise AssertionError(
        f"never saw {pattern!r} in output:\n{''.join(seen)}")


class TestStreamCommand:
    def test_stdout_replay_is_byte_exact(self, tmp_path):
        log = tmp_path / "drill.log"
        write_drill_log(log)
        result = run_cli(
            ["stream", "--log", str(log)], capture_output=True)
        assert result.returncode == 0, result.stderr
        assert result.stdout == log.read_bytes()
        assert b"streamed 31 lines" in result.stderr

    def test_rejects_negative_pace(self, tmp_path):
        log = tmp_path / "drill.log"
        log.write_text("x\n")
        result = run_cli(
            ["stream", "--log", str(log), "--pace", "-1"],
            capture_output=True)
        assert result.returncode != 0
        assert b"--pace" in result.stderr

    def test_unreachable_endpoint_fails_cleanly(self, tmp_path):
        log = tmp_path / "drill.log"
        log.write_text("x\n")
        # An unroutable connect must exit 1 with a message, not crash.
        result = run_cli(
            ["stream", "--log", str(log), "--tcp", "127.0.0.1:1"],
            capture_output=True)
        assert result.returncode == 1
        assert b"stream:" in result.stderr


class TestServeRoundTrip:
    def test_serve_stream_sigterm_drains(self, tmp_path):
        """The CLI face of the daemon drill: a served bundle, a
        streamed corrupted log, and a SIGTERM that must lose nothing —
        predictions, metrics, and a shutdown capsule all land."""
        bundle_path = tmp_path / "bundle.json"
        write_bundle(bundle_path)
        log = tmp_path / "drill.log"
        write_drill_log(log)
        preds_path = tmp_path / "preds.jsonl"
        metrics_path = tmp_path / "serve.prom"
        capsules = tmp_path / "capsules"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--bundle", str(bundle_path), "--shards", "2",
             "--chunk-lines", "4", "--http-port", "0",
             "--out", str(preds_path), "--metrics", str(metrics_path),
             "--flight-dir", str(capsules)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=cli_env(), text=True)
        try:
            match, _ = read_until(proc.stdout, r"tcp 127\.0\.0\.1:(\d+)")
            port = int(match.group(1))
            read_until(proc.stdout, r"daemon ready")
            result = run_cli(
                ["stream", "--log", str(log),
                 "--tcp", f"127.0.0.1:{port}"],
                capture_output=True)
            assert result.returncode == 0, result.stderr
            # SIGTERM while the daemon is live: graceful drain.
            time.sleep(0.5)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 143, out
        assert "draining" in out
        assert "drained" in out

        predictions = [
            json.loads(line)
            for line in preds_path.read_text().splitlines()
        ]
        assert len(predictions) == 6  # one FC5 completion per node
        assert {p["chain"] for p in predictions} == {"FC5"}

        metrics = metrics_path.read_text()
        assert "aarohi_daemon_shards_up 2" in metrics
        assert "aarohi_daemon_lines_received_total 31" in metrics
        assert "aarohi_ingest_quarantined_total 1" in metrics

        capsule_names = os.listdir(capsules)
        assert any("shutdown" in name for name in capsule_names)

    def test_serve_rejects_bad_bundle(self, tmp_path):
        bad = tmp_path / "bundle.json"
        bad.write_text("not json")
        result = run_cli(
            ["serve", "--bundle", str(bad)], capture_output=True)
        assert result.returncode != 0
        assert b"cannot load bundle" in result.stderr


def _skip_without_numpy():
    pytest.importorskip("numpy")


class TestPredictSigterm:
    def test_drain_writes_metrics_and_capsule(self, tmp_path, monkeypatch):
        """SIGTERM mid-run: predict exits 143 with the shutdown capsule
        and metrics snapshot written (in-process, so the handler and
        the drain path are exercised directly)."""
        _skip_without_numpy()
        from repro.cli import main
        from repro.core import PredictorFleet

        log = tmp_path / "w.log"
        assert main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "900", "--nodes", "8", "--failures", "2",
            "--out", str(log),
        ]) == 0
        metrics = tmp_path / "out.prom"
        capsules = tmp_path / "capsules"

        def terminated_mid_run(self, events, timing="off"):
            signal.raise_signal(signal.SIGTERM)
            raise AssertionError("SIGTERM handler did not fire")

        monkeypatch.setattr(PredictorFleet, "run", terminated_mid_run)
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--metrics", str(metrics),
            "--flight-dir", str(capsules),
        ])
        assert rc == 143
        # run() was patched out before any ingest, so the snapshot
        # carries the flight series — capsule count proves the drain
        # both dumped and then wrote metrics.
        assert "aarohi_flight_capsules_total 1" in metrics.read_text()
        assert any("shutdown" in name for name in os.listdir(capsules))

    def test_normal_run_still_exits_zero(self, tmp_path):
        _skip_without_numpy()
        from repro.cli import main

        log = tmp_path / "w.log"
        assert main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "900", "--nodes", "8", "--failures", "2",
            "--out", str(log),
        ]) == 0
        assert main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--json",
        ]) == 0


class TestObsServeSigterm:
    def test_hold_loop_drains_on_sigterm(self, tmp_path):
        _skip_without_numpy()
        from repro.cli import main

        log = tmp_path / "w.log"
        assert main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "900", "--nodes", "8", "--failures", "2",
            "--out", str(log),
        ]) == 0
        metrics = tmp_path / "out.prom"
        capsules = tmp_path / "capsules"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "obs-serve",
             "--system", "HPC3", "--seed", "5", "--log", str(log),
             "--port", "0", "--hold", "--metrics", str(metrics),
             "--flight-dir", str(capsules)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=cli_env(), text=True)
        try:
            read_until(proc.stdout, r"serving until interrupted")
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=90)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 143, out
        assert metrics.exists()
        assert "aarohi_" in metrics.read_text()
        assert any("shutdown" in name for name in os.listdir(capsules))
