"""End-to-end tests for the ``aarohi`` CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rules", "--system", "HPC9"])


class TestGenerate:
    def test_generates_log_file(self, tmp_path, capsys):
        out = tmp_path / "window.log"
        rc = main([
            "generate", "--system", "HPC4", "--seed", "3",
            "--duration", "600", "--nodes", "8", "--failures", "2",
            "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        lines = out.read_text().splitlines()
        assert len(lines) > 10
        captured = capsys.readouterr()
        assert "wrote" in captured.out
        assert "2 failures" in captured.out


class TestRules:
    def test_prints_both_forms(self, capsys):
        assert main(["rules", "--system", "HPC3"]) == 0
        out = capsys.readouterr().out
        assert "P_FC" in out and "P_LALR" in out

    def test_flat_only(self, capsys):
        assert main(["rules", "--system", "HPC3", "--flat"]) == 0
        out = capsys.readouterr().out
        assert "P_FC" in out and "P_LALR" not in out


class TestPredict:
    @pytest.mark.parametrize("backend", ["matcher", "lalr"])
    def test_predicts_from_file(self, tmp_path, capsys, backend):
        log = tmp_path / "w.log"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--backend", backend,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predictions" in out
        assert "FC_" in out  # at least one chain flagged


class TestPipeline:
    def test_full_pipeline_prints_metrics(self, capsys):
        rc = main([
            "pipeline", "--system", "HPC4", "--seed", "11",
            "--duration", "3600", "--nodes", "30", "--failures", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mined" in out
        assert "recall %" in out
        assert "mean lead time (min)" in out


class TestJsonOutput:
    def test_predict_json(self, tmp_path, capsys):
        log = tmp_path / "w.log"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "HPC3"
        assert payload["predictions"]
        first = payload["predictions"][0]
        assert set(first) == {"node", "chain", "flagged_at", "prediction_time"}
        stats = payload["stats"]
        assert stats["lines_seen"] == len(log.read_text().splitlines())
        assert 0.0 <= stats["fc_related_fraction"] <= 1.0
        scanner = payload["scanner"]
        assert scanner["backend"] in ("str", "bytes", "numpy")
        assert scanner["translate_evictions"] >= 0

    def test_pipeline_json(self, capsys):
        rc = main([
            "pipeline", "--system", "HPC4", "--seed", "11",
            "--duration", "3600", "--nodes", "30", "--failures", "10",
            "--json",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # pure JSON: no phase chatter on stdout
        for key in ("system", "mined_chains", "candidates", "predictions",
                    "failures", "recall_pct", "precision_pct", "accuracy_pct",
                    "fnr_pct", "mean_lead_time_s", "mean_prediction_time_s"):
            assert key in payload
        assert payload["system"] == "HPC4"
        assert payload["failures"] == 10


class TestObsReport:
    @pytest.fixture()
    def artifacts(self, tmp_path, capsys):
        log = tmp_path / "w.log"
        metrics = tmp_path / "out.prom"
        trace = tmp_path / "trace.jsonl"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--metrics", str(metrics),
            "--trace", str(trace),
        ])
        assert rc == 0
        capsys.readouterr()
        return metrics, trace

    def test_report_from_metrics(self, artifacts, capsys):
        metrics, _ = artifacts
        rc = main(["obs-report", "--metrics", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Scanner rejection funnel" in out
        assert "Fleet summary" in out
        assert "lines seen" in out

    def test_report_with_trace(self, artifacts, capsys):
        metrics, trace = artifacts
        rc = main([
            "obs-report", "--metrics", str(metrics), "--trace", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lifecycle" in out.lower()
        assert "prediction_fired" in out


class TestSpansAndFlightCli:
    @pytest.fixture()
    def spanned_metrics(self, tmp_path, capsys):
        log = tmp_path / "w.log"
        metrics = tmp_path / "spans.prom"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--metrics", str(metrics),
            "--spans", "1.0", "--flight-dir", str(tmp_path / "caps"),
        ])
        assert rc == 0
        capsys.readouterr()
        return metrics

    def test_spans_series_written_and_reported(
            self, spanned_metrics, capsys):
        assert "aarohi_span_stage_seconds_total" in \
            spanned_metrics.read_text()
        rc = main(["obs-report", "--metrics", str(spanned_metrics)])
        assert rc == 0
        assert "Pipeline stage spans" in capsys.readouterr().out

    def test_spans_flag_prints_only_span_tables(
            self, spanned_metrics, capsys):
        rc = main(["obs-report", "--metrics", str(spanned_metrics),
                   "--spans"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pipeline stage spans" in out
        assert "Scanner rejection funnel" not in out

    def test_spans_flag_without_span_series_exits_2(
            self, tmp_path, capsys):
        from repro.obs import LINES_SEEN, Registry, render_prometheus

        registry = Registry()
        registry.counter(LINES_SEEN, "lines").inc(5)
        plain = tmp_path / "plain.prom"
        plain.write_text(render_prometheus(registry.snapshot()))
        rc = main(["obs-report", "--metrics", str(plain), "--spans"])
        assert rc == 2
        assert "no span series" in capsys.readouterr().err

    def test_clean_run_writes_no_capsule(self, spanned_metrics, tmp_path):
        caps = tmp_path / "caps"
        assert not caps.exists() or not list(caps.iterdir())


class TestGenerateTruth:
    def test_truth_file_round_trips(self, tmp_path, capsys):
        from repro.logsim import read_truth

        out = tmp_path / "w.log"
        truth = tmp_path / "truth.jsonl"
        rc = main([
            "generate", "--system", "HPC4", "--seed", "3",
            "--duration", "600", "--nodes", "8", "--failures", "3",
            "--out", str(out), "--truth", str(truth),
        ])
        assert rc == 0
        failures = list(read_truth(str(truth)))
        assert len(failures) == 3
        assert all(f.node and f.time > 0 for f in failures)
        assert "ground-truth failures" in capsys.readouterr().out


class TestPredictWatch:
    def test_watch_renders_dashboard_frames(self, tmp_path, capsys):
        log = tmp_path / "w.log"
        truth = tmp_path / "truth.jsonl"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log), "--truth", str(truth),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--watch", "--slices", "4",
            "--truth", str(truth),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("— watch:") == 4
        assert "Live SLO monitor" in out
        assert "Online quality scoreboard" in out
        assert "deadline verdict" in out
        # --watch arms the history ring + default ruleset: every frame
        # carries the alert-rule states and the ring's trend columns.
        assert "Alert rules" in out
        assert "deadline-burn" in out
        assert "History trends (ring)" in out
        # The final predictions table still prints after the frames.
        assert "predictions" in out


class TestObsReportErrors:
    def run_report(self, capsys, *argv):
        rc = main(["obs-report", *argv])
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc, _, err = self.run_report(
            capsys, "--metrics", str(tmp_path / "nope.prom"))
        assert rc == 2
        assert err.startswith("obs-report: cannot read")
        assert len(err.strip().splitlines()) == 1

    def test_empty_file_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.prom"
        empty.write_text("")
        rc, _, err = self.run_report(capsys, "--metrics", str(empty))
        assert rc == 2
        assert "is empty" in err

    def test_truncated_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "trunc.prom"
        bad.write_text("# TYPE aarohi_lines_seen_total counter\n"
                       "aarohi_lines_seen_total {{{garbage\n")
        rc, _, err = self.run_report(capsys, "--metrics", str(bad))
        assert rc == 2
        assert "not a valid metrics snapshot" in err

    def test_no_input_exits_2(self, capsys):
        rc, _, err = self.run_report(capsys)
        assert rc == 2
        assert "need --metrics FILE or --diff" in err

    def test_bad_trace_exits_2(self, tmp_path, capsys):
        from repro.obs import LINES_SEEN, Registry, render_prometheus

        registry = Registry()
        registry.counter(LINES_SEEN, "lines").inc(5)
        metrics = tmp_path / "ok.prom"
        metrics.write_text(render_prometheus(registry.snapshot()))
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"ev": "mystery", "node": "n"}\n')
        rc, _, err = self.run_report(
            capsys, "--metrics", str(metrics), "--trace", str(trace))
        assert rc == 2
        assert "not a valid trace file" in err


class TestObsReportDiff:
    def write_prom(self, path, lines_seen):
        from repro.obs import LINES_SEEN, Registry, render_prometheus

        registry = Registry()
        registry.counter(LINES_SEEN, "lines offered").inc(lines_seen)
        path.write_text(render_prometheus(registry.snapshot()))

    def test_diff_reports_delta(self, tmp_path, capsys):
        before, after = tmp_path / "before.prom", tmp_path / "after.prom"
        self.write_prom(before, 100)
        self.write_prom(after, 150)
        rc = main(["obs-report", "--diff", str(before), str(after)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Scanner rejection funnel" in out
        assert "50" in out  # the delta, not either absolute value

    def test_identical_snapshots_say_so(self, tmp_path, capsys):
        before, after = tmp_path / "b.prom", tmp_path / "a.prom"
        self.write_prom(before, 100)
        self.write_prom(after, 100)
        rc = main(["obs-report", "--diff", str(before), str(after)])
        assert rc == 0
        assert "no metric changed" in capsys.readouterr().out

    def test_diff_with_missing_before_exits_2(self, tmp_path, capsys):
        after = tmp_path / "a.prom"
        self.write_prom(after, 100)
        rc = main([
            "obs-report", "--diff", str(tmp_path / "nope.prom"), str(after)])
        assert rc == 2
        assert "obs-report:" in capsys.readouterr().err

    def test_diff_reports_added_and_removed_series(self, tmp_path, capsys):
        from repro.obs import Registry, render_prometheus

        before, after = tmp_path / "b.prom", tmp_path / "a.prom"
        old_r = Registry()
        old_r.counter("aarohi_gone_total", "x").inc(1)
        before.write_text(render_prometheus(old_r.snapshot()))
        new_r = Registry()
        new_r.counter("aarohi_span_runs_total", "x").inc(2)
        after.write_text(render_prometheus(new_r.snapshot()))
        rc = main(["obs-report", "--diff", str(before), str(after)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Series added/removed" in out
        assert "aarohi_span_runs_total" in out
        assert "aarohi_gone_total" in out


class TestObsRules:
    def test_check_default_ruleset(self, capsys):
        rc = main(["obs-rules", "--check", "default"])
        assert rc == 0
        assert "4 rule(s) OK" in capsys.readouterr().out

    def test_print_default_round_trips_through_check(
            self, tmp_path, capsys):
        rc = main(["obs-rules", "--print-default"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "[[rule]]" in text
        assert "deadline-burn" in text
        path = tmp_path / "rules.toml"
        path.write_text(text, encoding="utf-8")
        assert main(["obs-rules", "--check", str(path)]) == 0

    def test_problems_exit_2_and_name_the_rules(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[[rule]]\nid = "a"\nseries = "aarohi_not_real_total"\n'
            'expr = "stddev"\n\n'
            '[[rule]]\nid = "a"\nseries = "aarohi_predictions_total"\n'
            'expr = "increase"\nwindow = 60.0\n',
            encoding="utf-8")
        rc = main(["obs-rules", "--check", str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown series 'aarohi_not_real_total'" in err
        assert "malformed expr" in err
        assert "duplicate rule id" in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["obs-rules", "--check", str(tmp_path / "nope.toml")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err

    def test_no_flags_exits_2(self, capsys):
        rc = main(["obs-rules"])
        assert rc == 2
        assert "need --check" in capsys.readouterr().err


class TestObsReportHistory:
    def _ring(self):
        from repro.obs import LINES_SEEN, HistoryRing, Registry

        registry = Registry()
        ring = HistoryRing(interval=0.0)
        counter = registry.counter(LINES_SEEN, "lines")
        for t, inc in [(0, 10), (10, 90), (20, 40)]:
            counter.inc(inc)
            ring.capture(registry.snapshot(), t=float(t))
        return ring

    def test_trend_table_from_ndjson_dump(self, tmp_path, capsys):
        from repro.obs import LINES_SEEN

        dump = tmp_path / "history.ndjson"
        dump.write_text(self._ring().render_ndjson(), encoding="utf-8")
        rc = main(["obs-report", "--history", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "History trends" in out
        assert LINES_SEEN in out
        assert any(block in out for block in "▁▂▃▄▅▆▇█")

    def test_trend_table_from_alert_capsule(self, tmp_path, capsys):
        from repro.obs import LINES_SEEN, TRIGGER_ALERT, FlightRecorder

        ring = self._ring()
        flight = FlightRecorder(capacity=16, directory=tmp_path)
        text = flight.trigger(
            TRIGGER_ALERT, key="r1", history=ring.records(),
            rule="r1", severity="page")
        capsule = tmp_path / "capsule.jsonl"
        capsule.write_text(text, encoding="utf-8")
        rc = main(["obs-report", "--history", str(capsule)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "History trends" in out
        assert LINES_SEEN in out

    def test_capsule_without_history_exits_2(self, tmp_path, capsys):
        from repro.obs import TRIGGER_DEADLINE, FlightRecorder

        flight = FlightRecorder(capacity=16, directory=tmp_path)
        text = flight.trigger(TRIGGER_DEADLINE)
        capsule = tmp_path / "capsule.jsonl"
        capsule.write_text(text, encoding="utf-8")
        rc = main(["obs-report", "--history", str(capsule)])
        assert rc == 2
        assert "without embedded history" in capsys.readouterr().err

    def test_empty_dump_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.ndjson"
        empty.write_text("", encoding="utf-8")
        rc = main(["obs-report", "--history", str(empty)])
        assert rc == 2
        assert "is empty" in capsys.readouterr().err


class TestPredictHistoryFlags:
    def _log(self, tmp_path):
        log = tmp_path / "w.log"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        return log

    def test_history_and_rules_flags_run_clean(self, tmp_path, capsys):
        log = self._log(tmp_path)
        capsys.readouterr()
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--history", "0", "--rules", "default",
        ])
        assert rc == 0
        # A healthy run must not report firing alerts.
        assert "alerts firing" not in capsys.readouterr().err

    def test_negative_history_rejected(self, tmp_path, capsys):
        log = self._log(tmp_path)
        with pytest.raises(SystemExit, match="--history must be"):
            main([
                "predict", "--system", "HPC3", "--seed", "5",
                "--log", str(log), "--history", "-1",
            ])

    def test_bad_rules_file_rejected(self, tmp_path, capsys):
        log = self._log(tmp_path)
        bad = tmp_path / "bad.toml"
        bad.write_text('[[rule]]\nid = "x"\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="cannot load rules"):
            main([
                "predict", "--system", "HPC3", "--seed", "5",
                "--log", str(log), "--rules", str(bad),
            ])


class TestObsServe:
    def test_serves_and_reports_verdict(self, tmp_path, capsys):
        log = tmp_path / "w.log"
        truth = tmp_path / "truth.jsonl"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log), "--truth", str(truth),
        ])
        capsys.readouterr()
        rc = main([
            "obs-serve", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--truth", str(truth),
            "--port", "0", "--slices", "4",
        ])
        out = capsys.readouterr().out
        assert "serving http://" in out
        assert "/metrics" in out
        assert "deadline PASS" in out
        assert rc == 0


class TestDirtyLogs:
    """The new ingest flags: generate --corrupt, predict --on-error /
    --reorder-horizon."""

    def make_corrupted_log(self, tmp_path, capsys):
        log = tmp_path / "dirty.log"
        rc = main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log), "--corrupt", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "corrupted at p=0.05" in out
        return log

    def test_generate_corrupt_writes_dirty_log(self, tmp_path, capsys):
        log = self.make_corrupted_log(tmp_path, capsys)
        from repro.core.events import LogEvent

        bad = 0
        for line in log.read_text().splitlines():
            if not line:
                continue
            try:
                LogEvent.from_line(line)
            except ValueError:
                bad += 1
        assert bad > 0  # truncation/garbling left undecodable lines

    def test_predict_survives_corrupted_log(self, tmp_path, capsys):
        log = self.make_corrupted_log(tmp_path, capsys)
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--on-error", "quarantine",
            "--reorder-horizon", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predictions" in out
        assert "quarantined" in out  # the ingest summary line

    def test_predict_json_carries_ingest_funnel(self, tmp_path, capsys):
        log = self.make_corrupted_log(tmp_path, capsys)
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--on-error", "quarantine", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        ingest = payload["ingest"]
        assert ingest["quarantined"] > 0
        assert ingest["decoded"] + ingest["quarantined"] == \
            ingest["lines_read"]

    def test_predict_strict_flag_raises_on_dirty_log(self, tmp_path, capsys):
        from repro.core.events import LogDecodeError

        log = self.make_corrupted_log(tmp_path, capsys)
        with pytest.raises(LogDecodeError):
            main([
                "predict", "--system", "HPC3", "--seed", "5",
                "--log", str(log), "--on-error", "strict",
            ])

    def test_clean_log_reports_no_quarantine(self, tmp_path, capsys):
        log = tmp_path / "clean.log"
        main([
            "generate", "--system", "HPC3", "--seed", "5",
            "--duration", "1800", "--nodes", "12", "--failures", "4",
            "--out", str(log),
        ])
        capsys.readouterr()
        rc = main([
            "predict", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingest"]["quarantined"] == 0

    def test_obs_serve_accepts_ingest_flags(self, tmp_path, capsys):
        log = self.make_corrupted_log(tmp_path, capsys)
        rc = main([
            "obs-serve", "--system", "HPC3", "--seed", "5",
            "--log", str(log), "--port", "0", "--slices", "2",
            "--on-error", "quarantine", "--reorder-horizon", "10",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ingest:" in out
        assert "quarantined" in out


class TestSpeedup:
    def test_speedup_table(self, capsys):
        rc = main(["speedup", "--system", "HPC3", "--length", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("Aarohi", "Desh", "DeepLog", "CloudSeer"):
            assert name in out


class TestCompile:
    def test_emits_standalone_module(self, tmp_path, capsys):
        out = tmp_path / "pred.py"
        rc = main(["compile", "--system", "HPC3", "--out", str(out)])
        assert rc == 0
        source = out.read_text()
        assert "class Predictor" in source
        namespace = {}
        exec(compile(source, str(out), "exec"), namespace)
        assert callable(namespace["tokenize"])


class TestFieldstudy:
    def test_prints_statistics(self, capsys):
        rc = main([
            "fieldstudy", "--system", "HPC4", "--seed", "3",
            "--windows", "3", "--duration", "1800",
            "--nodes", "12", "--failures", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MTBF" in out and "Weibull" in out and "recall" in out
