"""Detail tests for compiled lex specs and scanner internals."""


from repro.lexgen import LexSpec, Scanner, spec_from_pairs


class TestCompiledSpec:
    def test_n_states_positive_and_minimization_helps(self):
        spec = spec_from_pairs([
            ("A", "(ab|ac)(ab|ac)*"), ("B", r"x\d{2,4}"), ("C", "[p-t]+"),
        ])
        mini = spec.compile(minimized=True)
        full = spec.compile(minimized=False)
        assert 0 < mini.n_states <= full.n_states

    def test_rule_of_tag(self):
        compiled = spec_from_pairs([("A", "a"), ("B", "b")]).compile()
        assert compiled.rule_of_tag(0).name == "A"
        assert compiled.rule_of_tag(1).name == "B"

    def test_longest_match_api(self):
        compiled = spec_from_pairs([("NUM", r"\d+")]).compile()
        tag, end = compiled.longest_match("123abc", 0)
        assert tag == 0 and end == 3
        tag, end = compiled.longest_match("abc", 0)
        assert tag is None and end == 0

    def test_extend_and_names(self):
        spec = LexSpec().extend([("X", "x"), ("Y", "y")])
        assert spec.names() == ["X", "Y"]

    def test_skip_rule_roundtrip(self):
        spec = LexSpec().rule("T", "t").rule("SP", " +", skip=True)
        tokens = Scanner(spec).scan("t t  t")
        assert [t.name for t in tokens] == ["T", "T", "T"]


class TestScannerEdgeCases:
    def test_unicode_input(self):
        scanner = Scanner(spec_from_pairs([("WORD", "[a-z]+")]))
        tokens = scanner.scan("héllo wörld")
        # Accented chars are skipped; ASCII runs tokenize.
        assert [t.lexeme for t in tokens] == ["h", "llo", "w", "rld"]

    def test_very_long_token(self):
        scanner = Scanner(spec_from_pairs([("A", "a+")]))
        text = "a" * 50_000
        (token,) = scanner.scan(text)
        assert token.end == 50_000

    def test_alternating_error_and_match(self):
        scanner = Scanner(spec_from_pairs([("D", r"\d")]), on_error="skip")
        tokens = scanner.scan("1x2y3z")
        assert [t.lexeme for t in tokens] == ["1", "2", "3"]
