"""Tests for the scanner generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lexgen import LexSpec, LexSpecError, Scanner, ScanError, spec_from_pairs


@pytest.fixture
def arith_scanner():
    spec = (
        LexSpec()
        .rule("NUMBER", r"\d+")
        .rule("IDENT", r"[a-zA-Z_]\w*")
        .rule("PLUS", r"\+")
        .rule("TIMES", r"\*")
        .rule("LPAREN", r"\(")
        .rule("RPAREN", r"\)")
        .rule("WS", r"\s+", skip=True)
    )
    return Scanner(spec, on_error="raise")


class TestTokenization:
    def test_basic(self, arith_scanner):
        tokens = arith_scanner.scan("foo + 42 * (bar)")
        assert [t.name for t in tokens] == [
            "IDENT", "PLUS", "NUMBER", "TIMES", "LPAREN", "IDENT", "RPAREN",
        ]
        assert [t.lexeme for t in tokens] == ["foo", "+", "42", "*", "(", "bar", ")"]

    def test_spans(self, arith_scanner):
        tokens = arith_scanner.scan("ab 12")
        assert (tokens[0].start, tokens[0].end) == (0, 2)
        assert (tokens[1].start, tokens[1].end) == (3, 5)

    def test_longest_match_wins(self):
        spec = LexSpec().rule("IF", "if").rule("IDENT", r"[a-z]+")
        tokens = Scanner(spec).scan("iffy if")
        assert [t.name for t in tokens] == ["IDENT", "IF"]

    def test_first_rule_wins_on_tie(self):
        spec = LexSpec().rule("KEYWORD", "for").rule("IDENT", r"[a-z]+")
        tokens = Scanner(spec).scan("for")
        assert tokens[0].name == "KEYWORD"
        # Reversed order: IDENT shadows the keyword.
        spec2 = LexSpec().rule("IDENT", r"[a-z]+").rule("KEYWORD", "for")
        assert Scanner(spec2).scan("for")[0].name == "IDENT"

    def test_skip_rules_not_emitted(self, arith_scanner):
        assert all(t.name != "WS" for t in arith_scanner.scan("a + b"))

    def test_error_raise_policy(self, arith_scanner):
        with pytest.raises(ScanError) as exc_info:
            arith_scanner.scan("a @ b")
        assert exc_info.value.pos == 2

    def test_error_skip_policy(self):
        spec = LexSpec().rule("NUM", r"\d+")
        scanner = Scanner(spec, on_error="skip")
        tokens = scanner.scan("xx12--34")
        assert [t.lexeme for t in tokens] == ["12", "34"]

    def test_empty_input(self, arith_scanner):
        assert arith_scanner.scan("") == []

    def test_first_token(self, arith_scanner):
        token = arith_scanner.first_token("  zoo + 1")
        assert token is not None and token.name == "IDENT"
        spec = LexSpec().rule("NUM", r"\d+")
        assert Scanner(spec).first_token("no digits here at all") is None

    def test_tokens_is_lazy(self, arith_scanner):
        gen = arith_scanner.tokens("a + b")
        assert next(gen).name == "IDENT"

    def test_scan_from_offset(self, arith_scanner):
        tokens = list(arith_scanner.tokens("a + b", pos=2))
        assert [t.name for t in tokens] == ["PLUS", "IDENT"]


class TestSpecValidation:
    def test_duplicate_rule_name(self):
        with pytest.raises(LexSpecError):
            LexSpec().rule("A", "a").rule("A", "b")

    def test_empty_rule_name(self):
        with pytest.raises(LexSpecError):
            LexSpec().rule("", "a")

    def test_empty_spec(self):
        with pytest.raises(LexSpecError):
            LexSpec().compile()

    def test_bad_pattern_reports_rule(self):
        with pytest.raises(LexSpecError, match="BAD"):
            LexSpec().rule("BAD", "(").compile()

    def test_nullable_rule_rejected(self):
        with pytest.raises(LexSpecError, match="empty string"):
            LexSpec().rule("NULLABLE", "a*").compile()

    def test_spec_from_pairs(self):
        spec = spec_from_pairs([("A", "a"), ("B", "b")])
        assert spec.names() == ["A", "B"]


class TestLogLikeScanning:
    """Scanning shaped like Aarohi's phrase templates."""

    def test_log_phrase_templates(self):
        spec = (
            LexSpec()
            .rule("DVS_VERIFY", r"DVS: verify filesystem:")
            .rule("DVS_DOWN", r"DVS: file node down:")
            .rule("LUSTRE_PEER", r"Lustre: .* cannot find peer")
            .rule("NODE_UNAVAIL", r"cb_node_unavailable")
        )
        scanner = Scanner(spec, on_error="skip")
        line = (
            "DVS: verify filesystem: file system magic value 0x6969 "
            "retrieved from server c4-2c0s0n2"
        )
        token = scanner.first_token(line)
        assert token is not None and token.name == "DVS_VERIFY"

    def test_unrelated_line_yields_nothing(self):
        spec = LexSpec().rule("X", "target phrase")
        scanner = Scanner(spec, on_error="skip")
        assert scanner.first_token("pcieport 0000:00:03.0: Replay Timer Timeout") is None

    def test_minimized_and_unminimized_agree(self):
        pairs = [("A", "abc+"), ("B", r"ab\d+"), ("C", "[abc]{2,5}")]
        s1 = Scanner(spec_from_pairs(pairs), minimized=True)
        s2 = Scanner(spec_from_pairs(pairs), minimized=False)
        for text in ["abccc", "ab12", "aabbc", "abcab12ccc"]:
            assert s1.scan(text) == s2.scan(text)


@settings(max_examples=80, deadline=None)
@given(st.text(alphabet="ab1 ", max_size=30))
def test_roundtrip_coverage(text):
    """Every character is either inside some token or skipped; spans are
    monotonically increasing and non-overlapping."""
    spec = LexSpec().rule("A", "a+").rule("NUM", "1+").rule("B", "b")
    tokens = Scanner(spec).scan(text)
    prev_end = 0
    for t in tokens:
        assert t.start >= prev_end
        assert t.end > t.start
        assert text[t.start : t.end] == t.lexeme
        prev_end = t.end
