"""Tests for the raw-message detector layer (Table VI surface)."""

import numpy as np
import pytest

from repro.baselines import (
    AarohiMessageDetector,
    CloudSeerMessageDetector,
    DeshDetector,
    KeyedLSTMMessageDetector,
    repeat_message_checks,
    timed_message_check,
)
from repro.logsim import ClusterLogGenerator, HPC3
from repro.templates.store import NaiveTemplateScanner


@pytest.fixture(scope="module")
def env():
    gen = ClusterLogGenerator(HPC3, seed=9)
    rng = np.random.default_rng(3)
    chain_def = next(d for d in gen.trained_defs if d.chain_id == "FC_dvs")
    messages = [
        (gen.catalog.anomaly(k).make(rng, "c0-0c0s0n0"), float(i) * 5.0)
        for i, k in enumerate(chain_def.phrase_keys)
    ]
    return gen, chain_def, messages


class TestAarohiMessageDetector:
    def test_full_chain_flags(self, env):
        gen, _cd, messages = env
        det = AarohiMessageDetector(gen.chains, gen.store, timeout=240.0)
        flags = [det.observe_message(m, t) for m, t in messages]
        assert flags[-1] and not any(flags[:-1])

    def test_benign_messages_ignored(self, env):
        gen, _cd, _messages = env
        det = AarohiMessageDetector(gen.chains, gen.store, timeout=240.0)
        assert not det.observe_message("slurmd health check ok seq 5", 0.0)

    def test_unoptimized_variant_same_flags(self, env):
        gen, _cd, messages = env
        fast = AarohiMessageDetector(gen.chains, gen.store, timeout=240.0)
        slow = AarohiMessageDetector(
            gen.chains, gen.store, timeout=240.0, optimized=False)
        assert slow.name == "Aarohi (unoptimized)"
        for m, t in messages:
            assert fast.observe_message(m, t) == slow.observe_message(m, t)


class TestKeyedLSTM:
    def test_desh_flags_terminal(self, env):
        gen, _cd, messages = env
        scanner = NaiveTemplateScanner(gen.store, keep=gen.chains.token_set)
        det = KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(gen.chains, epochs=10, seed=4))
        flags = [det.observe_message(m, t) for m, t in messages]
        assert flags[-1]

    def test_reset_propagates(self, env):
        gen, _cd, messages = env
        scanner = NaiveTemplateScanner(gen.store, keep=gen.chains.token_set)
        det = KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(gen.chains, epochs=5, seed=4))
        for m, t in messages[:3]:
            det.observe_message(m, t)
        det.reset()
        assert not det.observe_message(messages[-1][0], 0.0)


class TestCloudSeerMessages:
    def test_completes_workflow(self, env):
        gen, _cd, messages = env
        det = CloudSeerMessageDetector(gen.chains, gen.store)
        flags = [det.observe_message(m, t) for m, t in messages]
        assert flags[-1]

    def test_pool_bounded(self, env):
        gen, _cd, messages = env
        det = CloudSeerMessageDetector(gen.chains, gen.store, max_pool=16)
        for _round in range(5):
            for m, t in messages:
                det.observe_message(m, t)
        assert det.live_instances <= 16

    def test_reset(self, env):
        gen, _cd, messages = env
        det = CloudSeerMessageDetector(gen.chains, gen.store)
        det.observe_message(messages[0][0], 0.0)
        det.reset()
        assert det.live_instances == 0


class TestTableVIShape:
    def test_ordering_on_long_stream(self, env):
        """Aarohi fastest; the LSTM/automaton comparators pay ≥3× more
        (the Table VI ordering, shape-level)."""
        gen, chain_def, _messages = env
        rng = np.random.default_rng(11)
        entries = []
        for i in range(60):
            key = chain_def.phrase_keys[i % len(chain_def.phrase_keys)]
            entries.append(
                (gen.catalog.anomaly(key).make(rng, "c0-0c0s0n0"), float(i)))
        scanner = NaiveTemplateScanner(gen.store, keep=gen.chains.token_set)
        aarohi = AarohiMessageDetector(gen.chains, gen.store, timeout=1e9)
        desh = KeyedLSTMMessageDetector(
            "Desh", scanner, DeshDetector.train(gen.chains, epochs=3, seed=4))
        cloudseer = CloudSeerMessageDetector(gen.chains, gen.store)
        t = {}
        for det in (aarohi, desh, cloudseer):
            runs = repeat_message_checks(det, entries, repeats=5)
            t[det.name] = min(r.seconds for r in runs)
        assert t["Aarohi"] * 3 < t["Desh"]
        assert t["Aarohi"] * 3 < t["CloudSeer"]

    def test_timed_message_check_result_fields(self, env):
        gen, _cd, messages = env
        det = AarohiMessageDetector(gen.chains, gen.store, timeout=240.0)
        result = timed_message_check(det, messages)
        assert result.flagged
        assert result.chain_length == len(messages)
        assert result.seconds > 0
