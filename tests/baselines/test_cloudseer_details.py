"""Detail tests for the CloudSeer message-level checker."""

import pytest

from repro.baselines import CloudSeerMessageDetector
from repro.core import ChainSet, FailureChain
from repro.templates import TemplateStore


@pytest.fixture
def env():
    store = TemplateStore()
    store.add("start one *", token=601)
    store.add("mid two *", token=602)
    store.add("end three *", token=603)
    store.add("start other *", token=611)
    store.add("end other *", token=612)
    chains = ChainSet([
        FailureChain("W1", (601, 602, 603)),
        FailureChain("W2", (611, 612)),
    ])
    return store, chains


class TestCloudSeerMessageDetector:
    def test_single_workflow(self, env):
        store, chains = env
        det = CloudSeerMessageDetector(chains, store)
        assert not det.observe_message("start one x", 0.0)
        assert not det.observe_message("mid two y", 1.0)
        assert det.observe_message("end three z", 2.0)

    def test_concurrent_instances_same_model(self, env):
        # Two interleaved W2 instances: branching lets both complete.
        store, chains = env
        det = CloudSeerMessageDetector(chains, store)
        det.observe_message("start other a", 0.0)
        det.observe_message("start other b", 1.0)
        first = det.observe_message("end other a", 2.0)
        second = det.observe_message("end other b", 3.0)
        assert first
        assert second  # the branch kept a live hypothesis

    def test_mid_stream_attachment(self, env):
        # Monitoring starts after the workflow began: a mid-position
        # entry still creates a hypothesis that can complete.
        store, chains = env
        det = CloudSeerMessageDetector(chains, store)
        det.observe_message("mid two y", 0.0)
        assert det.observe_message("end three z", 1.0)

    def test_foreign_messages_do_not_complete(self, env):
        store, chains = env
        det = CloudSeerMessageDetector(chains, store)
        for i in range(5):
            assert not det.observe_message(f"unrelated chatter {i}", float(i))
        assert det.live_instances == 0

    def test_pool_cap_enforced(self, env):
        store, chains = env
        det = CloudSeerMessageDetector(chains, store, max_pool=5)
        for i in range(30):
            det.observe_message("start one x", float(i))
            det.observe_message("mid two y", float(i) + 0.5)
        assert det.live_instances <= 5

    def test_extract_params(self, env):
        store, chains = env
        params = CloudSeerMessageDetector._extract_params(
            "start one 0xdead c0-0c1s2n3")
        assert "0xdead" in params or "c0-0c1s2n3" in params
