"""Tests for the chain-position lead-time estimator."""

import pytest

from repro.baselines.leadtime_estimator import (
    LeadTimeEstimator,
    TrainingEpisode,
    episodes_from_injections,
)
from repro.core import ChainSet, FailureChain
from repro.logsim import ClusterLogGenerator, HPC3


@pytest.fixture
def chains():
    return ChainSet([FailureChain("FC", (1, 2, 3))])


def episode(cid, times, failure):
    return TrainingEpisode(chain_id=cid, phrase_times=tuple(times),
                           failure_time=failure)


class TestEstimator:
    def test_learns_remaining_time(self, chains):
        episodes = [
            episode("FC", [0.0, 10.0, 20.0], 140.0),
            episode("FC", [0.0, 10.0, 20.0], 160.0),
        ]
        est = LeadTimeEstimator(chains).fit(episodes)
        at_match = est.estimate_at_match("FC")
        assert at_match.expected == pytest.approx(130.0)  # mean of 120/140
        assert at_match.position == 3

    def test_earlier_positions_expect_more_time(self, chains):
        episodes = [episode("FC", [0.0, 30.0, 60.0], 200.0)] * 3
        est = LeadTimeEstimator(chains).fit(episodes)
        e1 = est.estimate("FC", 1)
        e3 = est.estimate("FC", 3)
        assert e1.expected > e3.expected

    def test_unknown_position_returns_none(self, chains):
        est = LeadTimeEstimator(chains).fit(
            [episode("FC", [0.0, 1.0, 2.0], 100.0)])
        assert est.estimate("FC", 9) is None

    def test_unknown_chain_raises(self, chains):
        with pytest.raises(KeyError):
            LeadTimeEstimator(chains).fit(
                [episode("NOPE", [0.0, 1.0], 10.0)])

    def test_empty_training_rejected(self, chains):
        with pytest.raises(ValueError):
            LeadTimeEstimator(chains).fit([])

    def test_coverage_interval(self, chains):
        episodes = [
            episode("FC", [0.0, 1.0, 2.0], 2.0 + r)
            for r in (80.0, 100.0, 120.0, 140.0, 160.0)
        ]
        est = LeadTimeEstimator(chains).fit(episodes)
        at_match = est.estimate_at_match("FC")
        assert at_match.p10 <= at_match.expected <= at_match.p90
        assert at_match.covers(120.0)
        assert not at_match.covers(500.0)


class TestOnGeneratedWorkload:
    def test_trained_estimator_is_calibrated(self):
        gen = ClusterLogGenerator(HPC3, seed=23)
        train = gen.generate_window(
            duration=14_400.0, n_nodes=80, n_failures=40, n_spurious=0)
        test = gen.generate_window(
            duration=14_400.0, n_nodes=80, n_failures=40, n_spurious=0)
        est = LeadTimeEstimator(gen.chains).fit(
            episodes_from_injections(train.injections))
        metrics = est.evaluate(episodes_from_injections(test.injections))
        assert metrics["n"] >= 20
        # Lead gaps are ~30-235 s; a calibrated estimator lands well
        # under the full spread and covers most held-out episodes.
        assert metrics["mae"] < 120.0
        assert metrics["coverage"] > 0.5

    def test_estimates_available_at_match_time(self):
        gen = ClusterLogGenerator(HPC3, seed=24)
        train = gen.generate_window(
            duration=14_400.0, n_nodes=80, n_failures=40, n_spurious=0)
        est = LeadTimeEstimator(gen.chains).fit(
            episodes_from_injections(train.injections))
        for chain in gen.chains:
            estimate = est.estimate_at_match(chain.chain_id)
            if estimate is not None:
                assert 20.0 < estimate.expected < 300.0
