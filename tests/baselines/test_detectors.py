"""Tests for the comparator detectors and the timing harness."""

import pytest

from repro.baselines import (
    AarohiDetector,
    CloudSeerDetector,
    DeepLogDetector,
    DeshDetector,
    repeat_timed_checks,
    timed_chain_check,
)
from repro.core.chains import ChainSet, FailureChain


@pytest.fixture(scope="module")
def chains():
    return ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )


def feed(detector, tokens, dt=1.0):
    detector.reset()
    out = []
    for i, tok in enumerate(tokens):
        out.append(detector.observe(tok, i * dt))
    return out


class TestAarohiDetector:
    def test_flags_full_chain(self, chains):
        det = AarohiDetector(chains, timeout=120)
        flags = feed(det, [176, 177, 178, 179, 180, 137])
        assert flags[-1] and not any(flags[:-1])

    def test_reset(self, chains):
        det = AarohiDetector(chains, timeout=120)
        feed(det, [176, 177])
        det.reset()
        assert not any(feed(det, [178, 179, 180, 137]))


class TestCloudSeer:
    def test_single_workflow_completion(self, chains):
        det = CloudSeerDetector(chains)
        flags = feed(det, [172, 177, 178, 193, 137])
        assert flags[-1]

    def test_interleaved_workflows_both_complete(self, chains):
        # FC1 and FC5 interleaved: the ensemble tracks both — 137 arrives
        # twice, completing each chain.
        det = CloudSeerDetector(chains)
        seq = [176, 172, 177, 178, 179, 193, 137, 180, 137]
        flags = feed(det, seq)
        assert sum(flags) == 2

    def test_foreign_tokens_tolerated(self, chains):
        det = CloudSeerDetector(chains)
        flags = feed(det, [172, 999, 177, 998, 178, 193, 137])
        assert flags[-1]

    def test_error_budget_kills_instance(self, chains):
        det = CloudSeerDetector(chains, error_budget=1)
        # Out-of-order own-alphabet tokens exceed the budget.
        feed(det, [172, 137, 193, 193, 193])
        assert det.live_instances == 0

    def test_pool_grows_with_interleaving(self, chains):
        det = CloudSeerDetector(chains)
        feed(det, [176, 172])
        assert det.live_instances == 2


class TestDeepLog:
    @pytest.fixture(scope="class")
    def detector(self, chains):
        sequences = [c.tokens for c in chains]
        return DeepLogDetector.train(
            sequences, hidden=16, layers=1, epochs=120, seed=5, g=2
        )

    def test_normal_sequence_not_flagged(self, detector, chains):
        flags = feed(detector, list(chains["FC1"].tokens))
        assert not any(flags)

    def test_garbled_sequence_flagged(self, detector):
        flags = feed(detector, [176, 137, 180, 137, 179, 177])
        assert any(flags)

    def test_unknown_keys_flagged(self, detector):
        flags = feed(detector, [9991, 9992, 9993])
        assert any(flags)

    def test_reset_clears_state(self, detector, chains):
        feed(detector, [176, 137, 180])
        detector.reset()
        assert not any(feed(detector, list(chains["FC1"].tokens)))


class TestDesh:
    @pytest.fixture(scope="class")
    def detector(self, chains):
        return DeshDetector.train(chains, hidden=12, epochs=150, seed=6)

    def test_chain_flags_at_terminal(self, detector, chains):
        flags = feed(detector, list(chains["FC5"].tokens))
        assert flags[-1]

    def test_irrelevant_tokens_ignored(self, detector):
        assert not any(feed(detector, [9991, 9992]))

    def test_no_flag_without_terminal(self, detector, chains):
        flags = feed(detector, list(chains["FC1"].tokens[:-1]))
        assert not any(flags)


class TestTimingHarness:
    def test_timed_chain_check(self, chains):
        det = AarohiDetector(chains, timeout=120)
        tokens = [(t, float(i)) for i, t in enumerate(chains["FC1"].tokens)]
        result = timed_chain_check(det, tokens)
        assert result.flagged
        assert result.seconds > 0
        assert result.chain_length == 6
        assert result.msecs == pytest.approx(result.seconds * 1000)
        assert result.per_entry_msecs == pytest.approx(result.msecs / 6)

    def test_repeat_excludes_warmup(self, chains):
        det = AarohiDetector(chains, timeout=120)
        tokens = [(t, float(i)) for i, t in enumerate(chains["FC1"].tokens)]
        runs = repeat_timed_checks(det, tokens, repeats=3)
        assert len(runs) == 3

    def test_aarohi_faster_than_deeplog(self, chains):
        """The Table VI ordering on a 50-token stream: the grammar
        matcher beats the per-entry LSTM by a wide margin."""
        aarohi = AarohiDetector(chains, timeout=1e9)
        deeplog = DeepLogDetector.train(
            [c.tokens for c in chains], hidden=32, layers=2, epochs=5, seed=7
        )
        stream = [(chains["FC1"].tokens[i % 6], float(i)) for i in range(60)]
        t_aarohi = min(r.seconds for r in repeat_timed_checks(aarohi, stream, repeats=5))
        t_deeplog = min(r.seconds for r in repeat_timed_checks(deeplog, stream, repeats=5))
        assert t_aarohi * 3 < t_deeplog
