"""Tests for cross-system adaptation (Table IX)."""

import pytest

from repro.adapt import (
    CASSANDRA,
    HADOOP,
    HPC5_CRAY_XK,
    HPC6_BGP,
    TABLE9,
    coverage,
    plan_adaptation,
    remap_store,
)
from repro.core import AarohiPredictor, LogEvent
from repro.logsim import ClusterLogGenerator, HPC3


@pytest.fixture(scope="module")
def gen():
    return ClusterLogGenerator(HPC3, seed=3)


class TestCatalogs:
    def test_table9_has_four_systems_of_six_phrases(self):
        assert len(TABLE9) == 4
        for phrases in TABLE9.values():
            assert len(phrases) == 6

    def test_hpc_systems_have_equivalents(self):
        assert coverage(HPC5_CRAY_XK) == 1.0
        assert coverage(HPC6_BGP) == 1.0

    def test_ds_systems_have_none(self):
        assert coverage(CASSANDRA) == 0.0
        assert coverage(HADOOP) == 0.0


class TestRemapStore:
    def test_tokens_preserved(self, gen):
        token = gen.token_of("kpanic")
        new_store = remap_store(
            gen.store, {token: "Kernel Panic, Call Trace: *"})
        assert new_store.get(token).text == "Kernel Panic, Call Trace: *"
        # Untouched templates identical.
        other = gen.token_of("mce")
        assert new_store.get(other).text == gen.store.get(other).text

    def test_extra_templates_added(self, gen):
        from repro.core.events import Severity

        new_store = remap_store(gen.store, {}, extra=[("brand new *", Severity.UNKNOWN)])
        assert new_store.lookup("brand new *") is not None


class TestPlanAdaptation:
    def _xc_token_of(self, gen):
        return {key: gen.token_of(key)
                for key in gen.catalog.by_key() if key}

    @pytest.mark.parametrize("system,phrases", [
        ("HPC5 (Cray-XK*)", HPC5_CRAY_XK),
        ("HPC6 (IBM-BG/P)", HPC6_BGP),
    ])
    def test_hpc_systems_remap(self, gen, system, phrases):
        store, report = plan_adaptation(
            system, phrases, gen.store, self._xc_token_of(gen), gen.chains)
        assert report.strategy == "remap"
        assert report.rules_unchanged
        assert report.remapped >= 4
        assert report.scanner_rebuild_seconds < 5.0

    @pytest.mark.parametrize("system,phrases", [
        ("Cassandra", CASSANDRA),
        ("Hadoop", HADOOP),
    ])
    def test_ds_systems_regenerate(self, gen, system, phrases):
        store, report = plan_adaptation(
            system, phrases, gen.store, self._xc_token_of(gen), gen.chains)
        assert report.strategy == "regenerate"
        assert not report.rules_unchanged
        assert report.added == 6

    def test_remapped_predictor_still_predicts(self, gen):
        """After remapping to BG/P syntax, the same grammar rules flag
        the same failure chain from the new system's log text."""
        xc_token_of = self._xc_token_of(gen)
        store, report = plan_adaptation(
            "HPC6 (IBM-BG/P)", HPC6_BGP, gen.store, xc_token_of, gen.chains)
        assert report.rules_unchanged
        # FC_mce = mce, ecc_corr, ecc_uncorr, soft_lockup, kpanic.
        # In BG/P syntax, ecc_corr and soft_lockup have new templates.
        predictor = AarohiPredictor.from_store(gen.chains, store, timeout=240.0)
        messages = [
            gen.store.get(gen.token_of("mce")).text.replace("*", "bank 4"),
            "Node DDR correctable single symbol error(s) rank 2",  # BG/P P3
            gen.store.get(gen.token_of("ecc_uncorr")).text.replace("*", "page 9"),
            "Kernel panic: soft-lockup: hung tasks on cpu 3",  # BG/P P4
            gen.store.get(gen.token_of("kpanic")).text.replace("*", "fatal"),
        ]
        predictions = []
        for i, message in enumerate(messages):
            p = predictor.process(LogEvent(float(i * 3), "R01-M0", message))
            if p:
                predictions.append(p)
        assert [p.chain_id for p in predictions] == ["FC_mce"]
