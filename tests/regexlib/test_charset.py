"""Unit and property tests for interval-based character sets."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.regexlib.charset import (
    DIGITS,
    DOT,
    MAX_CODEPOINT,
    SPACE,
    WORD,
    CharSet,
    partition_alphabet,
)


def small_charsets():
    interval = st.tuples(
        st.integers(0, 300), st.integers(0, 300)
    ).map(lambda t: (min(t), max(t)))
    return st.lists(interval, max_size=6).map(CharSet)


class TestBasics:
    def test_single(self):
        cs = CharSet.single("a")
        assert "a" in cs and "b" not in cs
        assert len(cs) == 1

    def test_range(self):
        cs = CharSet.range("a", "f")
        assert all(c in cs for c in "abcdef")
        assert "g" not in cs
        assert len(cs) == 6

    def test_of(self):
        cs = CharSet.of("xyz")
        assert all(c in cs for c in "xyz")
        assert "w" not in cs

    def test_inverted_range_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CharSet.range("z", "a")

    def test_normalization_merges_adjacent(self):
        cs = CharSet([(97, 99), (100, 105)])
        assert cs.intervals == ((97, 105),)

    def test_normalization_merges_overlapping(self):
        cs = CharSet([(10, 50), (30, 70), (60, 80)])
        assert cs.intervals == ((10, 80),)

    def test_empty(self):
        assert not CharSet.empty()
        assert len(CharSet.empty()) == 0

    def test_full(self):
        assert len(CharSet.full()) == MAX_CODEPOINT + 1

    def test_iteration(self):
        assert list(CharSet.range("a", "c")) == [97, 98, 99]

    def test_equality_and_hash(self):
        a = CharSet.range("a", "c")
        b = CharSet([(97, 97), (98, 99)])
        assert a == b
        assert hash(a) == hash(b)

    def test_immutable(self):
        import pytest

        with pytest.raises(AttributeError):
            CharSet.single("a").intervals = ()


class TestAlgebra:
    def test_union(self):
        cs = CharSet.range("a", "c") | CharSet.range("x", "z")
        assert "b" in cs and "y" in cs and "m" not in cs

    def test_intersect(self):
        cs = CharSet.range("a", "m") & CharSet.range("g", "z")
        assert cs == CharSet.range("g", "m")

    def test_difference(self):
        cs = CharSet.range("a", "z") - CharSet.range("d", "f")
        assert "c" in cs and "d" not in cs and "g" in cs

    def test_complement_roundtrip(self):
        cs = CharSet.range("a", "z")
        assert cs.complement().complement() == cs

    def test_complement_of_empty_is_full(self):
        assert CharSet.empty().complement() == CharSet.full()

    def test_overlaps(self):
        assert CharSet.range("a", "m").overlaps(CharSet.range("m", "z"))
        assert not CharSet.range("a", "c").overlaps(CharSet.range("x", "z"))

    @given(small_charsets(), small_charsets())
    def test_union_membership(self, a, b):
        union = a | b
        for cp in range(0, 301, 7):
            assert union.contains_cp(cp) == (a.contains_cp(cp) or b.contains_cp(cp))

    @given(small_charsets(), small_charsets())
    def test_intersection_membership(self, a, b):
        inter = a & b
        for cp in range(0, 301, 7):
            assert inter.contains_cp(cp) == (a.contains_cp(cp) and b.contains_cp(cp))

    @given(small_charsets())
    def test_complement_membership(self, a):
        comp = a.complement()
        for cp in range(0, 301, 7):
            assert comp.contains_cp(cp) != a.contains_cp(cp)

    @given(small_charsets(), small_charsets())
    def test_demorgan(self, a, b):
        assert (a | b).complement() == a.complement() & b.complement()


class TestNamedClasses:
    def test_digits(self):
        assert all(c in DIGITS for c in string.digits)
        assert "a" not in DIGITS

    def test_word(self):
        assert all(c in WORD for c in string.ascii_letters + string.digits + "_")
        assert "-" not in WORD

    def test_space(self):
        assert all(c in SPACE for c in " \t\r\n")
        assert "a" not in SPACE

    def test_dot_excludes_newline(self):
        assert "\n" not in DOT
        assert "a" in DOT and " " in DOT


class TestPartition:
    def test_empty_input(self):
        assert partition_alphabet([]) == []

    def test_disjoint_sets_kept(self):
        blocks = partition_alphabet([CharSet.range("a", "c"), CharSet.range("x", "z")])
        assert len(blocks) == 2

    def test_overlap_split(self):
        a = CharSet.range("a", "m")
        b = CharSet.range("g", "z")
        blocks = partition_alphabet([a, b])
        # a-only, overlap, b-only
        assert len(blocks) == 3
        for block in blocks:
            # Every block is fully inside or outside each input set.
            in_a = [a.contains_cp(cp) for cp in block]
            in_b = [b.contains_cp(cp) for cp in block]
            assert len(set(in_a)) == 1 and len(set(in_b)) == 1

    @given(st.lists(small_charsets(), min_size=1, max_size=5))
    def test_partition_is_disjoint_and_covering(self, sets):
        blocks = partition_alphabet(sets)
        # Disjoint
        for i, x in enumerate(blocks):
            for y in blocks[i + 1 :]:
                assert not x.overlaps(y)
        # Each input set is the union of some blocks
        for cs in sets:
            covered = CharSet.empty()
            for block in blocks:
                if cs.overlaps(block):
                    assert block - cs == CharSet.empty()  # block inside cs
                    covered = covered | block
            assert covered == cs
