"""End-to-end tests of the regex engine against Python's ``re``."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import regexlib
from repro.regexlib.parser import RegexSyntaxError


CASES = [
    ("abc", ["abc"], ["ab", "abcd", ""]),
    ("a|b", ["a", "b"], ["c", "ab", ""]),
    ("a*", ["", "a", "aaaa"], ["b", "ab"]),
    ("a+", ["a", "aaa"], ["", "b"]),
    ("a?b", ["b", "ab"], ["aab", "a"]),
    ("(ab)+", ["ab", "abab"], ["", "aba"]),
    ("[abc]+", ["a", "cab"], ["", "d", "abd"]),
    ("[^abc]", ["d", "z", " "], ["a", "b", "c", ""]),
    ("[a-z0-9]+", ["abc123"], ["ABC", ""]),
    ("a{3}", ["aaa"], ["aa", "aaaa"]),
    ("a{2,4}", ["aa", "aaa", "aaaa"], ["a", "aaaaa"]),
    ("a{2,}", ["aa", "aaaaaa"], ["a", ""]),
    (r"\d+", ["0", "42", "12345"], ["", "a", "4a"]),
    (r"\w+", ["abc_123"], ["", "a b"]),
    (r"\s", [" ", "\t", "\n"], ["a", ""]),
    (r"\.", ["."], ["a"]),
    (r"a\\b", ["a\\b"], ["ab"]),
    (".", ["a", " ", "."], ["\n", "", "ab"]),
    (".*", ["", "anything here"], ["line\nbreak"]),
    ("(a|b)*c", ["c", "abbac"], ["ab", ""]),
    ("x(yz|w)+", ["xyz", "xwyzw"], ["x", "yzw"]),
    (r"0x[0-9a-fA-F]+", ["0x1f", "0xDEAD"], ["0x", "1f"]),
    (r"c\d+-\d+c\d+s\d+n\d+", ["c0-0c2s0n2", "c12-3c0s7n1"], ["c0-0", "n2"]),
]


@pytest.mark.parametrize("pattern,accepted,rejected", CASES)
def test_fullmatch_table(pattern, accepted, rejected):
    rx = regexlib.compile(pattern)
    for text in accepted:
        assert rx.fullmatch(text), f"{pattern!r} should match {text!r}"
    for text in rejected:
        assert not rx.fullmatch(text), f"{pattern!r} should not match {text!r}"


@pytest.mark.parametrize("pattern,accepted,rejected", CASES)
def test_matches_stdlib(pattern, accepted, rejected):
    """Our engine agrees with CPython's re on every table entry."""
    rx = regexlib.compile(pattern)
    std = re.compile(pattern)
    for text in accepted + rejected:
        assert rx.fullmatch(text) == bool(std.fullmatch(text))


def test_longest_match_prefix():
    rx = regexlib.compile("a+")
    assert rx.match_prefix("aaab") == (0, 3)
    assert rx.match_prefix("baaa") is None
    assert rx.match_prefix("baaa", 1) == (1, 4)


def test_search():
    rx = regexlib.compile(r"\d+")
    assert rx.search("abc 123 xyz") == (4, 7)
    assert rx.search("no digits") is None


def test_search_nullable_pattern_returns_empty_at_start():
    rx = regexlib.compile("a*")
    assert rx.search("bbb") == (0, 0)


def test_unminimized_equivalent():
    pattern = "(ab|ac)*ad"
    mini = regexlib.compile(pattern)
    full = regexlib.compile(pattern, minimized=False)
    for text in ["ad", "abad", "acabad", "ab", "", "abab"]:
        assert mini.fullmatch(text) == full.fullmatch(text)
    assert mini.dfa.n_states <= full.dfa.n_states


def test_minimization_reduces_states():
    # (a|b)*abb is the textbook example with redundant subset states.
    pattern = "(a|b)*abb"
    full = regexlib.compile(pattern, minimized=False)
    mini = regexlib.compile(pattern)
    assert mini.dfa.n_states <= full.dfa.n_states
    assert mini.dfa.n_states == 4  # classic minimal DFA


@pytest.mark.parametrize(
    "bad",
    ["(", ")", "[", "a{2,1}", "*a", "+", "a|*", r"\q", "[z-a]", "(?", "[]"],
)
def test_syntax_errors(bad):
    with pytest.raises(RegexSyntaxError):
        regexlib.compile(bad)


def test_class_range_endpoint_class_rejected():
    with pytest.raises(RegexSyntaxError):
        regexlib.compile(r"[a-\d]")


def test_literal_brace_without_quantifier():
    rx = regexlib.compile("a{x")
    assert rx.fullmatch("a{x")


def test_escapes():
    rx = regexlib.compile(r"\x41B\n\t")
    assert rx.fullmatch("AB\n\t")


def test_caret_inside_class_nonleading_is_literal():
    rx = regexlib.compile("[a^]")
    assert rx.fullmatch("^") and rx.fullmatch("a")
    assert not rx.fullmatch("b")


def test_dash_trailing_in_class_is_literal():
    rx = regexlib.compile("[a-]")
    assert rx.fullmatch("-") and rx.fullmatch("a")


# -- differential property test against re on a generated fragment ------

_atom = st.sampled_from(list("abc01") + [r"\d", r"\w", ".", "[ab]", "[^a]"])


@st.composite
def simple_patterns(draw, depth=2):
    if depth == 0:
        return draw(_atom)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(_atom)
    if kind == 1:
        return f"(?:{draw(simple_patterns(depth=depth - 1))})*"
    if kind == 2:
        return f"(?:{draw(simple_patterns(depth=depth - 1))})?"
    if kind == 3:
        a = draw(simple_patterns(depth=depth - 1))
        b = draw(simple_patterns(depth=depth - 1))
        return f"(?:{a}|{b})"
    a = draw(simple_patterns(depth=depth - 1))
    b = draw(simple_patterns(depth=depth - 1))
    return a + b


@settings(max_examples=120, deadline=None)
@given(simple_patterns(), st.text(alphabet="abc01 _", max_size=8))
def test_differential_vs_stdlib(pattern, text):
    ours = regexlib.compile(pattern)
    theirs = re.compile(pattern)
    assert ours.fullmatch(text) == bool(theirs.fullmatch(text))


def test_huge_repetition_bound_rejected():
    with pytest.raises(RegexSyntaxError, match="exceeds"):
        regexlib.compile("a{100000}")
    with pytest.raises(RegexSyntaxError, match="exceeds"):
        regexlib.compile("a{1,99999}")
    regexlib.compile("a{1,512}")  # at the limit: fine
