"""Tests for DFA product operations: exact equivalence checking."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import regexlib
from repro.regexlib.ops import (
    equivalent,
    find_distinguishing_string,
    tag_equivalent,
    to_dot,
)
from repro.lexgen import spec_from_pairs


def dfa_of(pattern, minimized=True):
    return regexlib.compile(pattern, minimized=minimized).dfa


class TestEquivalence:
    @pytest.mark.parametrize("p, q", [
        ("a*", "a*"),
        ("(a|b)*", "(b|a)*"),
        ("aa*", "a+"),
        ("a(bc)?", "a|abc"),
        ("(ab)*a", "a(ba)*"),
        (r"\d\d*", r"\d+"),
    ])
    def test_equivalent_pairs(self, p, q):
        assert equivalent(dfa_of(p), dfa_of(q))
        assert find_distinguishing_string(dfa_of(p), dfa_of(q)) is None

    @pytest.mark.parametrize("p, q", [
        ("a*", "a+"),
        ("ab", "ba"),
        ("[ab]", "[abc]"),
        ("a{2,3}", "a{2,4}"),
    ])
    def test_inequivalent_pairs(self, p, q):
        assert not equivalent(dfa_of(p), dfa_of(q))

    def test_witness_is_real(self):
        witness = find_distinguishing_string(dfa_of("a*"), dfa_of("a+"))
        assert witness == ""  # empty string separates them
        witness = find_distinguishing_string(dfa_of("a{2,3}"), dfa_of("a{2,4}"))
        assert witness == "aaaa"

    def test_witness_agrees_with_stdlib(self):
        p, q = "(ab|a)b*", "a+b*"
        witness = find_distinguishing_string(dfa_of(p), dfa_of(q))
        if witness is not None:
            assert bool(re.fullmatch(p, witness)) != bool(re.fullmatch(q, witness))

    def test_minimization_preserves_language_exactly(self):
        for pattern in ["(a|b)*abb", "x(yz|w)+", r"c\d+-\d+", "a{2,7}[bc]*"]:
            assert equivalent(
                dfa_of(pattern, minimized=True),
                dfa_of(pattern, minimized=False),
            )

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["a", "b", "ab", "a|b", "(ab)*", "a+b?", "[ab]{1,3}"]),
           st.sampled_from(["a", "b", "ab", "a|b", "(ab)*", "a+b?", "[ab]{1,3}"]))
    def test_equivalence_matches_sampling(self, p, q):
        eq = equivalent(dfa_of(p), dfa_of(q))
        rp, rq = re.compile(p), re.compile(q)
        samples = ["", "a", "b", "ab", "ba", "aa", "abab", "aab", "bb", "aabb"]
        sampled_eq = all(
            bool(rp.fullmatch(s)) == bool(rq.fullmatch(s)) for s in samples
        )
        if eq:
            assert sampled_eq  # exact equivalence implies sample agreement
        # (inequivalent languages may still agree on these samples)


class TestTagEquivalence:
    def test_scanner_minimization_preserves_tags(self):
        pairs = [("A", "abc+"), ("B", r"ab\d+"), ("C", "[abc]{2,5}")]
        mini = spec_from_pairs(pairs).compile(minimized=True)
        full = spec_from_pairs(pairs).compile(minimized=False)
        assert tag_equivalent(mini.dfa, full.dfa)

    def test_rule_order_changes_tags(self):
        a = spec_from_pairs([("K", "for"), ("I", "[a-z]+")]).compile()
        b = spec_from_pairs([("I", "[a-z]+"), ("K", "for")]).compile()
        # Same language, different tag assignment on "for".
        assert equivalent(a.dfa, b.dfa)
        assert not tag_equivalent(a.dfa, b.dfa)


class TestDot:
    def test_dot_structure(self):
        dot = to_dot(dfa_of("ab|ac"), name="demo")
        assert dot.startswith("digraph demo {")
        assert "doublecircle" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")
