"""Tests for labeling and chain mining."""

import pytest

from repro.core.events import LogEvent, Severity, TokenEvent
from repro.templates import TemplateStore
from repro.training import (
    EventLabeler,
    anomaly_sequences,
    extract_candidates,
    mine_chains,
    terminal_tokens,
)


@pytest.fixture
def store():
    s = TemplateStore()
    s.add("healthy chatter *", Severity.BENIGN, token=100)
    s.add("err alpha *", Severity.ERRONEOUS, token=101)
    s.add("warn beta *", Severity.UNKNOWN, token=102)
    s.add("err gamma *", Severity.ERRONEOUS, token=103)
    s.add("node down *", Severity.ERRONEOUS, token=110)
    return s


def tok(node, t, token):
    return TokenEvent(time=t, token=token, node=node)


class TestLabeling:
    def test_label_severity(self, store):
        labeler = EventLabeler(store)
        labeled = labeler.label(LogEvent(1.0, "n1", "err alpha details"))
        assert labeled.token == 101
        assert labeled.severity is Severity.ERRONEOUS
        assert labeled.anomaly_relevant

    def test_benign_not_relevant(self, store):
        labeler = EventLabeler(store)
        labeled = labeler.label(LogEvent(1.0, "n1", "healthy chatter x"))
        assert not labeled.anomaly_relevant

    def test_unmatched_is_benign(self, store):
        labeler = EventLabeler(store)
        labeled = labeler.label(LogEvent(1.0, "n1", "totally unknown line"))
        assert labeled.token is None
        assert labeled.severity is Severity.BENIGN

    def test_anomaly_sequences_grouped_by_node(self, store):
        labeler = EventLabeler(store)
        events = [
            LogEvent(1.0, "a", "err alpha x"),
            LogEvent(2.0, "b", "warn beta y"),
            LogEvent(3.0, "a", "healthy chatter z"),
            LogEvent(4.0, "a", "err gamma w"),
        ]
        seqs = anomaly_sequences(labeler.label_stream(events))
        assert [te.token for te in seqs["a"]] == [101, 103]
        assert [te.token for te in seqs["b"]] == [102]

    def test_terminal_tokens(self, store):
        assert terminal_tokens(store, ["node down"]) == {110}
        assert terminal_tokens(store, ["nothing"]) == set()


class TestCandidateExtraction:
    def test_basic_candidate(self):
        seqs = {"a": [tok("a", 1.0, 101), tok("a", 2.0, 102),
                      tok("a", 3.0, 103), tok("a", 10.0, 110)]}
        cands = extract_candidates(seqs, {110})
        assert len(cands) == 1
        assert cands[0].tokens == (101, 102, 103)
        assert cands[0].times == (1.0, 2.0, 3.0)

    def test_repeats_keep_first_occurrence(self):
        seqs = {"a": [tok("a", 1.0, 101), tok("a", 2.0, 101),
                      tok("a", 3.0, 102), tok("a", 4.0, 110)]}
        cands = extract_candidates(seqs, {110})
        assert cands[0].tokens == (101, 102)
        assert cands[0].times == (1.0, 3.0)

    def test_lookback_window(self):
        seqs = {"a": [tok("a", 0.0, 101), tok("a", 5000.0, 102),
                      tok("a", 5001.0, 110)]}
        cands = extract_candidates(seqs, {110}, lookback=100.0)
        # 101 is too old; only 102 remains → below 2-phrase minimum.
        assert cands == []

    def test_prior_death_resets_episode(self):
        seqs = {"a": [tok("a", 1.0, 101), tok("a", 2.0, 110),
                      tok("a", 3.0, 102), tok("a", 4.0, 103),
                      tok("a", 5.0, 110)]}
        cands = extract_candidates(seqs, {110})
        assert len(cands) == 1
        assert cands[0].tokens == (102, 103)

    def test_max_len_truncates_to_recent(self):
        seqs = {"a": [tok("a", float(i), 200 + i) for i in range(10)]
                + [tok("a", 100.0, 110)]}
        cands = extract_candidates(seqs, {110}, max_len=4)
        assert len(cands[0].tokens) == 4
        assert cands[0].tokens == (206, 207, 208, 209)


class TestMining:
    def test_support_grouping(self):
        episode = [(101, 1.0), (102, 2.0), (103, 3.0), (110, 9.0)]
        seqs = {}
        for n in range(3):
            seqs[f"node{n}"] = [tok(f"node{n}", t + n * 100, k) for k, t in episode]
        mined = mine_chains(seqs, {110}, min_support=2)
        assert len(mined.chains) == 1
        chain = next(iter(mined.chains))
        assert chain.tokens == (101, 102, 103)
        assert mined.support[(101, 102, 103)] == 3

    def test_mean_deltas(self):
        seqs = {
            "a": [tok("a", 0.0, 101), tok("a", 10.0, 102), tok("a", 11.0, 110)],
            "b": [tok("b", 0.0, 101), tok("b", 20.0, 102), tok("b", 21.0, 110)],
        }
        mined = mine_chains(seqs, {110})
        chain = next(iter(mined.chains))
        assert chain.deltas == (15.0,)

    def test_low_support_skipped(self):
        seqs = {
            "a": [tok("a", 0.0, 101), tok("a", 1.0, 102), tok("a", 2.0, 110)],
            "b": [tok("b", 0.0, 103), tok("b", 1.0, 102), tok("b", 2.0, 110)],
            "c": [tok("c", 50.0, 101), tok("c", 51.0, 102), tok("c", 52.0, 110)],
        }
        mined = mine_chains(seqs, {110}, min_support=2)
        assert len(mined.chains) == 1
        assert (103, 102) in mined.skipped_low_support

    def test_no_deaths_raises(self):
        seqs = {"a": [tok("a", 0.0, 101), tok("a", 1.0, 102)]}
        with pytest.raises(ValueError, match="no candidate"):
            mine_chains(seqs, {110})

    def test_all_below_support_raises(self):
        seqs = {"a": [tok("a", 0.0, 101), tok("a", 1.0, 102), tok("a", 2.0, 110)]}
        with pytest.raises(ValueError, match="below support"):
            mine_chains(seqs, {110}, min_support=5)
