"""Tests for the LSTM Phase-1 trainer and efficiency metrics."""

import pytest

from repro.core.events import NodeFailure, Prediction, TokenEvent
from repro.training import (
    ConfusionCounts,
    LSTMPhase1Trainer,
    confusion_from_predictions,
)


def tok(node, t, token):
    return TokenEvent(time=t, token=token, node=node)


def make_sequences(n_nodes=6):
    """Synthetic corpus: one recurring failure episode per node."""
    episode = [(101, 0.0), (102, 5.0), (103, 9.0), (110, 120.0)]
    seqs = {}
    for n in range(n_nodes):
        base = n * 1000.0
        seqs[f"node{n}"] = [tok(f"node{n}", base + t, k) for k, t in episode]
    return seqs


class TestLSTMPhase1:
    def test_trains_and_keeps_supported_chain(self):
        trainer = LSTMPhase1Trainer(epochs=40, seed=1)
        result = trainer.train(make_sequences(), {110}, min_support=2)
        assert len(result.chains) == 1
        chain = next(iter(result.chains))
        assert chain.tokens == (101, 102, 103)
        assert result.train_loss < 2.0
        assert result.rejected == []

    def test_chain_score_orders_coherent_above_noise(self):
        trainer = LSTMPhase1Trainer(epochs=60, seed=2)
        result = trainer.train(make_sequences(), {110}, min_support=2)
        seen_score = trainer.chain_score(result.model, result.vocab, (101, 102, 103))
        shuffled_score = trainer.chain_score(result.model, result.vocab, (103, 101, 102))
        assert seen_score > shuffled_score

    def test_chain_score_unknown_tokens(self):
        trainer = LSTMPhase1Trainer(epochs=5, seed=3)
        result = trainer.train(make_sequences(), {110}, min_support=2)
        assert trainer.chain_score(result.model, result.vocab, (999,)) == float("-inf")

    def test_single_token_vocab_rejected(self):
        trainer = LSTMPhase1Trainer(epochs=5)
        seqs = {"a": [tok("a", 0.0, 101), tok("a", 1.0, 101)]}
        with pytest.raises(ValueError):
            trainer.train(seqs, {110})


class TestConfusionCounts:
    def test_table7_formulas(self):
        c = ConfusionCounts(tp=15, fp=2, tn=80, fn=3)
        assert c.recall == pytest.approx(15 / 18)
        assert c.precision == pytest.approx(15 / 17)
        assert c.accuracy == pytest.approx(95 / 100)
        assert c.false_negative_rate == pytest.approx(3 / 18)
        assert 0 < c.f1 < 1

    def test_zero_division_guarded(self):
        c = ConfusionCounts(tp=0, fp=0, tn=0, fn=0)
        assert c.recall == c.precision == c.accuracy == c.f1 == 0.0

    def test_percentages(self):
        c = ConfusionCounts(tp=1, fp=1, tn=1, fn=1)
        pct = c.as_percentages()
        assert pct["recall"] == 50.0 and pct["accuracy"] == 50.0


class TestConfusionFromPredictions:
    def test_node_instance_accounting(self):
        nodes = ["a", "b", "c", "d"]
        failures = [NodeFailure("a", 100.0), NodeFailure("b", 100.0)]
        predictions = [
            Prediction("a", "FC1", flagged_at=40.0, prediction_time=0.001),
            Prediction("c", "FC1", flagged_at=10.0, prediction_time=0.001),
        ]
        c = confusion_from_predictions(predictions, failures, nodes)
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)

    def test_late_flag_is_fn(self):
        failures = [NodeFailure("a", 100.0)]
        predictions = [Prediction("a", "FC1", flagged_at=150.0, prediction_time=0.0)]
        c = confusion_from_predictions(predictions, failures, ["a"])
        assert (c.tp, c.fn) == (0, 1)

    def test_stale_flag_beyond_horizon_is_fn(self):
        failures = [NodeFailure("a", 10_000.0)]
        predictions = [Prediction("a", "FC1", flagged_at=1.0, prediction_time=0.0)]
        c = confusion_from_predictions(predictions, failures, ["a"], horizon=100.0)
        assert (c.tp, c.fn) == (0, 1)
