#!/usr/bin/env python3
"""Online adaptation + deployment: learn new failure chains in
production, then compile the enriched predictor to a standalone module.

Demonstrates the paper's closing claim — Aarohi's automation permits
"unsupervised dynamic re-training and re-generation of a new parser for
enhanced FCs as they are being observed" — and the Fig. 6 "binary"
step via :mod:`repro.codegen`.

Run:  python examples/online_adaptation.py
"""

from pathlib import Path
import tempfile

from repro.codegen import emit_predictor_source, load_predictor
from repro.core import ChainSet
from repro.core.adaptive import AdaptiveFleet
from repro.logsim import ClusterLogGenerator, HPC3
from repro.training import terminal_tokens


def main() -> None:
    gen = ClusterLogGenerator(HPC3, seed=55)

    # Deliberately train on a *subset* of the real failure modes: the
    # fleet starts blind to FC_gpu and FC_lustre.
    known = ChainSet([c for c in gen.chains
                      if c.chain_id not in ("FC_gpu", "FC_lustre")])
    print(f"Deployed with {len(known)} of {len(gen.chains)} failure "
          f"chains trained.\n")

    terminals = terminal_tokens(
        gen.store, ["node down", "node *", "shutting down"])
    scanner = gen.store.compile_scanner()
    anomaly_tokens = {
        gen.token_of(e.key) for e in gen.catalog.anomalies
    } - terminals
    fleet = AdaptiveFleet(
        known, scanner.tokenize, terminals,
        relevant_tokens=anomaly_tokens,
        timeout=gen.recommended_timeout, min_support=2)

    # Stream several windows of cluster life; unpredicted deaths teach.
    predictions = 0
    for epoch in range(6):
        window = gen.generate_window(
            duration=7200.0, n_nodes=30, n_failures=10, n_spurious=0,
            start_time=epoch * 10_000.0)
        flags = fleet.run(window.events)
        predictions += len(flags)
        learned = [a for a in fleet.adaptations]
        print(f"  window {epoch}: {len(flags):>2} predictions, "
              f"{len(learned)} chains learned so far")

    print("\nLearned chains:")
    for event in fleet.adaptations:
        print(f"  {event.chain_id}: tokens {event.tokens} "
              f"(confirmed on node {event.node})")

    # Ship it: compile the enriched chain set to a standalone module.
    source = emit_predictor_source(
        fleet.chains, gen.store, timeout=gen.recommended_timeout)
    out = Path(tempfile.gettempdir()) / "aarohi_hpc3_generated.py"
    out.write_text(source)
    module = load_predictor(source)
    print(f"\nGenerated standalone predictor: {out} "
          f"({len(source.splitlines())} lines, zero imports)")

    # Smoke-test the generated module on a learned chain.
    if fleet.adaptations:
        tokens = fleet.adaptations[0].tokens
        predictor = module.Predictor()
        result = None
        for i, token in enumerate(tokens):
            result = predictor.feed_token(token, float(i))
        print(f"Standalone module flags the learned chain: {result!r}")


if __name__ == "__main__":
    main()
