#!/usr/bin/env python3
"""Grammar playground: watch Algorithm 1 and the LALR machinery work.

Recreates the paper's Table III / Table IV walk-through with the exact
FC1/FC5 token chains, shows the generated P_FC and P_LALR rule forms,
dumps the LALR(1) table statistics, and then single-steps the streaming
parser over a noisy token stream so you can see skips and the accept.

Run:  python examples/grammar_playground.py
"""

from repro.core import ChainSet, FailureChain, build_chain_tables, build_rules
from repro.core.grammar_builder import factored_grammar, flat_grammar
from repro.parsegen import END, FeedResult, StreamingParser, build_tables
from repro.reporting import render_table


def main() -> None:
    # The Table IV example: FC1 and FC5 share subchain (177 178) and
    # terminal 137 but start differently.
    chains = ChainSet(
        [
            FailureChain("FC1", (176, 177, 178, 179, 180, 137)),
            FailureChain("FC5", (172, 177, 178, 193, 137)),
        ]
    )

    print("=== Algorithm 1: failure chains → parser rules ===\n")
    rule_set = build_rules(chains)
    print(rule_set.describe())

    print("\n=== Generated LALR(1) tables ===\n")
    for label, grammar in (("flat (P_FC)", flat_grammar(rule_set)),
                           ("factored (P_LALR)", factored_grammar(rule_set))):
        tables = build_tables(grammar, prefer_shift=True)
        stats = tables.stats()
        print(render_table(
            ["property", "value"], sorted(stats.items()),
            title=f"{label} grammar"))
        print()

    print("=== Streaming parse with skip semantics ===\n")
    tables = build_chain_tables(rule_set)
    parser = StreamingParser(tables)
    # The §III example: 172 matches FC5's start; 4 is an interleaved
    # foreign token the parser skips; 193 137 completes the rule.
    stream = [172, 177, 178, 4, 193, 137]
    for token in stream:
        result = parser.feed(str(token), token)
        state = {
            FeedResult.SHIFTED: "shifted",
            FeedResult.ERROR: "skipped (not viable here)",
            FeedResult.ACCEPTED: "ACCEPTED",
        }[result]
        print(f"  token {token:>3} → {state:<28} "
              f"(stack depth {parser.depth})")
        if result is not FeedResult.ERROR and parser.would_accept(END):
            parser.feed(END)
            print(f"\n  complete failure chain match: {parser.result!r}")
            break

    print("\nA full chain match = an imminent node failure flag; the")
    print("matched chain id tells operators *which* failure mode it is.")


if __name__ == "__main__":
    main()
