#!/usr/bin/env python3
"""Two-phase pipeline: offline training (Phase 1) → online prediction
(Phase 2), the full workflow of the paper's Fig. 6.

Phase 1 here uses the real machinery — labeling raw logs against the
template store, mining failure chains from node-death lookbacks, and
gating the candidates with a numpy LSTM scorer — rather than the
generator's ground-truth chains, so you can see recall/precision emerge
from data.

Run:  python examples/two_phase_training.py
"""

from repro.core import PredictorFleet, pair_predictions
from repro.logsim import ClusterLogGenerator, HPC4
from repro.reporting import render_table
from repro.training import (
    EventLabeler,
    LSTMPhase1Trainer,
    anomaly_sequences,
    confusion_from_predictions,
    terminal_tokens,
)


def main() -> None:
    gen = ClusterLogGenerator(HPC4, seed=99)

    # --- Phase 1: offline training ------------------------------------
    print("Phase 1: generating 6h of training logs...")
    train = gen.generate_window(duration=21_600.0, n_nodes=100, n_failures=42)

    labeler = EventLabeler(gen.store)
    labeled = labeler.label_stream(train.events)
    sequences = anomaly_sequences(labeled)
    relevant = sum(len(v) for v in sequences.values())
    print(f"  {len(train.events)} events labeled; "
          f"{relevant} anomaly-relevant phrases on {len(sequences)} nodes")

    terminals = terminal_tokens(
        gen.store, ["node down", "node *", "shutting down"])
    trainer = LSTMPhase1Trainer(epochs=30, seed=5)
    result = trainer.train(sequences, terminals, min_support=1)
    print(f"  LSTM trained to loss {result.train_loss:.3f} over "
          f"{result.model.n_params()} parameters")
    print(f"  {len(result.chains)} failure chains kept, "
          f"{len(result.rejected)} rejected by the model\n")
    for chain in result.chains:
        print(f"    {chain.chain_id}: {len(chain)} phrases, "
              f"expected span {chain.expected_span():.0f}s")

    # --- Phase 2: online prediction on unseen logs ---------------------
    print("\nPhase 2: predicting on a fresh 3h test window...")
    test = gen.generate_window(duration=10_800.0, n_nodes=48, n_failures=16)
    fleet = PredictorFleet.from_store(
        result.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(test.events)
    pairing = pair_predictions(report.predictions, test.failures)
    confusion = confusion_from_predictions(
        report.predictions, test.failures, test.nodes)

    pct = confusion.as_percentages()
    print(render_table(
        ["metric", "value"],
        [
            ("recall", f"{pct['recall']:.1f}%"),
            ("precision", f"{pct['precision']:.1f}%"),
            ("accuracy", f"{pct['accuracy']:.1f}%"),
            ("false negative rate", f"{pct['fnr']:.1f}%"),
            ("mean lead time", f"{pairing.mean_lead_time() / 60:.2f} min"),
            ("mean prediction time",
             f"{pairing.mean_prediction_time() * 1e3:.3f} ms"),
        ],
        title="Fig. 7-style efficiency on the test window"))


if __name__ == "__main__":
    main()
