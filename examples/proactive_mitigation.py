#!/usr/bin/env python3
"""Proactive mitigation: do the predicted lead times actually pay?

Closes the loop of the paper's §IV Discussion: run the predictor over a
large window, feed the measured lead times to the mitigation planner,
and compare the checkpoint/restart economics of a cluster with and
without prediction (Daly-optimal periodic vs predictor-driven).

Run:  python examples/proactive_mitigation.py
"""

from repro.core import PredictorFleet, pair_predictions
from repro.logsim import ClusterLogGenerator, HPC1
from repro.mitigation import (
    PROCESS_MIGRATION,
    compute_saved_node_seconds,
    daly_interval,
    plan_mitigation,
    proactive_vs_periodic,
)
from repro.reporting import render_table


def main() -> None:
    gen = ClusterLogGenerator(HPC1, seed=31)
    window = gen.generate_window(
        duration=14_400.0, n_nodes=60, n_failures=20, n_spurious=2)
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(window.events)
    pairing = pair_predictions(report.predictions, window.failures)
    print(f"{pairing.true_positives}/{len(window.failures)} failures "
          f"predicted, mean lead {pairing.mean_lead_time() / 60:.2f} min\n")

    # Which recovery actions fit inside the measured lead times?
    plan = plan_mitigation(pairing.matched)
    rows = [
        (f.action, f"{f.fraction:.0%}", f"{f.mean_margin:.0f} s")
        for f in plan.feasibility
    ]
    print(render_table(
        ["action", "feasible", "mean margin"],
        rows, title="Mitigation feasibility across predictions"))
    print(f"Recommended action: {plan.recommended}\n")

    saved = compute_saved_node_seconds(pairing.matched, PROCESS_MIGRATION)
    print(f"Node-seconds of rework avoided via process migration: "
          f"{saved:,.0f}\n")

    # Cluster-level checkpoint economics (the intro's motivation).
    mtbf = 4 * 3600.0  # cluster-wide MTBF at scale
    delta = 120.0  # checkpoint cost
    tau = daly_interval(delta, mtbf)
    recall = pairing.true_positives / len(window.failures)
    savings = proactive_vs_periodic(
        checkpoint_cost=delta, mtbf=mtbf, restart_cost=300.0,
        prediction_recall=recall, action_cost=PROCESS_MIGRATION.mean_cost)
    print(render_table(
        ["quantity", "value"],
        [
            ("Daly-optimal interval", f"{tau / 60:.1f} min"),
            ("periodic waste", f"{savings.periodic_waste:.1%}"),
            ("proactive waste", f"{savings.proactive_waste:.1%}"),
            ("waste reduction", f"{savings.waste_reduction:.1%}"),
        ],
        title=f"Checkpoint economics (MTBF {mtbf / 3600:.0f}h, "
              f"recall {recall:.0%})"))


if __name__ == "__main__":
    main()
