#!/usr/bin/env python3
"""Quickstart: predict node failures on a synthetic Cray log stream.

Walks the paper's core loop end to end in ~30 lines of user code:
generate a cluster log window for HPC3 (Table II), build a per-node
predictor fleet from the trained failure chains, stream the log
through it, and report lead times to the injected failures.

Run:  python examples/quickstart.py
"""

from repro.core import PredictorFleet, pair_predictions
from repro.logsim import ClusterLogGenerator, HPC3
from repro.reporting import render_table


def main() -> None:
    # 1. A simulated production system: Cray XC40, 1630 nodes (Table II).
    gen = ClusterLogGenerator(HPC3, seed=2026)
    print(f"System: {HPC3.name} ({HPC3.describe()['Type']}, "
          f"{HPC3.n_nodes} nodes)")
    print(f"Trained failure chains: {len(gen.chains)} "
          f"(lengths {sorted(len(c) for c in gen.chains)})")

    # 2. One hour of cluster life on 24 nodes with 6 failing.
    window = gen.generate_window(duration=3600.0, n_nodes=24, n_failures=6)
    print(f"Generated {window.n_events} log events, "
          f"{len(window.failures)} node failures injected\n")

    # 3. The Aarohi predictor fleet: one instance per node, all sharing
    #    the generated scanner DFA and chain rules.
    fleet = PredictorFleet.from_store(
        gen.chains, gen.store, timeout=gen.recommended_timeout)
    report = fleet.run(window.events)

    # 4. Pair predictions with ground truth and report lead times.
    pairing = pair_predictions(report.predictions, window.failures)
    rows = [
        (r.failure.node, r.prediction.chain_id,
         f"{r.effective_lead_time / 60:.2f}",
         f"{r.prediction.prediction_time * 1e3:.3f}")
        for r in pairing.matched
    ]
    print(render_table(
        ["node", "matched chain", "lead time (min)", "prediction (ms)"],
        rows, title="Predicted node failures"))

    print(f"\nPredicted {pairing.true_positives}/{len(window.failures)} "
          f"failures ({len(pairing.missed_failures)} used chains the "
          f"trainer never saw)")
    print(f"Mean lead time: {pairing.mean_lead_time() / 60:.2f} min — "
          f"enough for process migration (≈3.1 s) many times over.")
    print(f"FC-related phrase fraction: {report.fc_related_fraction:.1%} "
          f"(the rest never left the scanner)")


if __name__ == "__main__":
    main()
