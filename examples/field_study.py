#!/usr/bin/env python3
"""Field study: months-scale failure statistics for a simulated system.

Reproduces the style of analysis the paper's introduction builds on
(failure distributions, MTBF, spatial correlation) over a longitudinal
simulation campaign, and closes with what prediction buys.

Run:  python examples/field_study.py
"""

from repro.analysis import (
    failures_by_chain,
    fit_exponential,
    fit_weibull,
    inter_failure_stats,
    inter_failure_times,
    run_campaign,
    spatial_correlation,
)
from repro.logsim import HPC1
from repro.reporting import render_bars, render_table


def main() -> None:
    print("Simulating 24 windows of HPC1 cluster life...\n")
    campaign = run_campaign(
        HPC1, windows=24, duration=7200.0, n_nodes=40,
        failures_per_window=6, seed=71)

    stats = inter_failure_stats(campaign.failures)
    gaps = inter_failure_times(campaign.failures)
    rate, ll_exp = fit_exponential(gaps)
    weibull = fit_weibull(gaps)
    corr_blade = spatial_correlation(campaign.failures, level="blade",
                                     n_locations=HPC1.n_nodes // 4)
    corr_cab = spatial_correlation(campaign.failures, level="cabinet",
                                   n_locations=HPC1.n_nodes // 192)

    print(render_table(
        ["statistic", "value"],
        [
            ("failures observed", stats.count),
            ("MTBF", f"{stats.mtbf / 60:.1f} min"),
            ("failures/day", f"{stats.failures_per_day:.1f}"),
            ("inter-failure CV", f"{stats.cv:.2f}"),
            ("Weibull shape k", f"{weibull.shape:.2f}"
             + (" (clustered)" if weibull.clustered else " (regular)")),
            ("Weibull vs exponential ΔLL",
             f"{weibull.log_likelihood - ll_exp:+.1f}"),
            ("blade co-location ratio", f"{corr_blade.ratio:.2f}"),
            ("cabinet co-location ratio", f"{corr_cab.ratio:.2f}"),
        ],
        title="Inter-failure statistics"))

    print()
    by_chain = failures_by_chain(campaign.failures)
    labels = sorted(by_chain, key=by_chain.get, reverse=True)
    print(render_bars(labels, [float(by_chain[l]) for l in labels],
                      title="Failures by root-cause chain",
                      value_fmt="{:.0f}"))

    print()
    leads = [r.effective_lead_time for r in campaign.matched]
    print(render_table(
        ["prediction outcome", "value"],
        [
            ("recall over campaign", f"{campaign.recall:.1%}"),
            ("false positives", len(campaign.false_positives)),
            ("mean lead time",
             f"{sum(leads) / len(leads) / 60:.2f} min" if leads else "—"),
        ],
        title="What the predictor delivered"))


if __name__ == "__main__":
    main()
