#!/usr/bin/env python3
"""Cross-system adaptation (Table IX): one predictor, four foreign
systems.

Takes the predictor trained on Cray XC40 logs and adapts it to
(a) Cray XK and IBM BG/P — semantically equivalent phrases, so the
scanner remaps and the grammar rules survive untouched; and
(b) Cassandra and Hadoop — different context, forcing rule
regeneration.  Then proves the remapped BG/P predictor still flags the
same failure chain from BG/P-syntax log lines.

Run:  python examples/cross_system_adaptation.py
"""

from repro.adapt import TABLE9, plan_adaptation
from repro.core import AarohiPredictor, LogEvent
from repro.logsim import ClusterLogGenerator, HPC3
from repro.reporting import render_table


def main() -> None:
    gen = ClusterLogGenerator(HPC3, seed=17)
    xc_token_of = {key: gen.token_of(key) for key in gen.catalog.by_key()}

    rows = []
    stores = {}
    for system, phrases in TABLE9.items():
        store, report = plan_adaptation(
            system, phrases, gen.store, xc_token_of, gen.chains)
        stores[system] = store
        rows.append((
            system, report.strategy,
            f"{report.equivalent_coverage:.0%}",
            report.remapped, report.added,
            "unchanged" if report.rules_unchanged else "REGENERATE",
            f"{report.scanner_rebuild_seconds * 1e3:.2f} ms",
        ))
    print(render_table(
        ["System", "Strategy", "XC-equivalent", "Remapped", "Added",
         "Grammar rules", "Rebuild time"],
        rows, title="Table IX — adaptation outcomes"))

    # Prove the BG/P remap end-to-end: BG/P-syntax messages, XC rules.
    print("\nReplaying an FC_mce failure episode in BG/P log syntax:")
    bgp_messages = [
        "Machine Check Exception: bank 4 deadbeef",  # unchanged template
        "Node DDR correctable single symbol error(s) rank 2",  # BG/P P3
        "EDAC MC0: uncorrected error page 0x9f00",  # unchanged template
        "Kernel panic: soft-lockup: hung tasks on cpu 3",  # BG/P P4
        "Kernel panic not syncing: fatal exception",  # unchanged template
    ]
    predictor = AarohiPredictor.from_store(
        gen.chains, stores["HPC6 (IBM-BG/P)"], timeout=240.0)
    for i, message in enumerate(bgp_messages):
        prediction = predictor.process(
            LogEvent(float(i * 4), "R01-M0-N04", message))
        marker = f"  → FLAGGED {prediction.chain_id}" if prediction else ""
        print(f"  [{i * 4:>3}s] {message[:58]:<58}{marker}")

    print("\nSame grammar, new scanner — the paper's portability claim.")


if __name__ == "__main__":
    main()
